package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sizeless/internal/apps"
	"sizeless/internal/core"
	"sizeless/internal/dataset"
	"sizeless/internal/fngen"
	"sizeless/internal/harness"
	"sizeless/internal/monitoring"
	"sizeless/internal/platform"
	"sizeless/internal/runtime"
	"sizeless/internal/workload"
	"sizeless/internal/xrand"
)

// Scale controls experiment cost. The paper's numbers are FullScale; tests
// and benchmarks use reduced settings that preserve the shapes.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// TrainFunctions is the synthetic-dataset population (paper: 2000).
	TrainFunctions int
	// Rate/Duration drive dataset-generation experiments (paper: 30 rps,
	// 10 min).
	Rate     float64
	Duration time.Duration
	// CaseRate/CaseDuration drive case-study measurements.
	CaseRate     float64
	CaseDuration time.Duration
	// Repetitions for case-study measurements (paper: 10).
	Repetitions int
	// Model hyperparameters (paper: 4×256, 200 epochs).
	Hidden []int
	Epochs int
	// StabilityFunctions and StabilityDuration configure Fig. 3 (paper:
	// 50 functions, 15 min).
	StabilityFunctions int
	StabilityDuration  time.Duration
	// Seed anchors all randomness.
	Seed int64
	// Workers bounds harness parallelism (0 = GOMAXPROCS).
	Workers int
}

// SmallScale is sized for unit tests: seconds, not minutes.
func SmallScale() Scale {
	return Scale{
		Name:               "small",
		TrainFunctions:     220,
		Rate:               10,
		Duration:           6 * time.Second,
		CaseRate:           15,
		CaseDuration:       10 * time.Second,
		Repetitions:        3,
		Hidden:             []int{48, 48},
		Epochs:             300,
		StabilityFunctions: 8,
		StabilityDuration:  30 * time.Second,
		Seed:               1,
	}
}

// MediumScale is the default for cmd/benchreport: minutes of CPU.
func MediumScale() Scale {
	return Scale{
		Name:               "medium",
		TrainFunctions:     640,
		Rate:               20,
		Duration:           20 * time.Second,
		CaseRate:           20,
		CaseDuration:       20 * time.Second,
		Repetitions:        3,
		Hidden:             []int{128, 128, 128},
		Epochs:             300,
		StabilityFunctions: 20,
		StabilityDuration:  2 * time.Minute,
		Seed:               1,
	}
}

// FullScale reproduces the paper's campaign sizes. This is hours of CPU.
func FullScale() Scale {
	return Scale{
		Name:               "full",
		TrainFunctions:     2000,
		Rate:               30,
		Duration:           10 * time.Minute,
		CaseRate:           10,
		CaseDuration:       10 * time.Minute,
		Repetitions:        10,
		Hidden:             []int{256, 256, 256, 256},
		Epochs:             200,
		StabilityFunctions: 50,
		StabilityDuration:  15 * time.Minute,
		Seed:               1,
	}
}

// ScaleByName resolves "small", "medium", or "full".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return SmallScale(), nil
	case "medium":
		return MediumScale(), nil
	case "full":
		return FullScale(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
	}
}

// CaseStudy is one measured application.
type CaseStudy struct {
	App apps.App
	// Measured maps function name → memory size → averaged summary.
	Measured map[string]map[platform.MemorySize]monitoring.Summary
}

// MeasuredTimes extracts the mean execution times for one function.
func (c *CaseStudy) MeasuredTimes(fn string) (map[platform.MemorySize]float64, error) {
	per, ok := c.Measured[fn]
	if !ok {
		return nil, fmt.Errorf("experiments: function %q not measured", fn)
	}
	out := make(map[platform.MemorySize]float64, len(per))
	for m, s := range per {
		out[m] = s.Mean[monitoring.ExecutionTime]
	}
	return out, nil
}

// Lab owns the shared experiment state.
type Lab struct {
	Scale Scale

	provider platform.Provider

	mu          sync.Mutex
	ds          *dataset.Dataset
	models      map[platform.MemorySize]*core.Model
	caseStudies []*CaseStudy
}

// NewLab returns a lab at the given scale on the default (AWS-Lambda-like)
// provider, reproducing the paper's platform.
func NewLab(scale Scale) *Lab {
	return NewLabFor(scale, platform.AWSLambda())
}

// NewLabFor returns a lab whose measurements, pricing, and memory grid all
// follow the given provider — the hook behind benchreport's -provider
// flag.
func NewLabFor(scale Scale, p platform.Provider) *Lab {
	return &Lab{Scale: scale, provider: p, models: make(map[platform.MemorySize]*core.Model)}
}

// Provider returns the platform the lab experiments run on.
func (l *Lab) Provider() platform.Provider { return l.provider }

// Pricing returns the provider's billing scheme.
func (l *Lab) Pricing() platform.Pricer { return l.provider.Platform().Pricing }

// Sizes returns the provider's prediction grid (the paper's six sizes on
// AWS).
func (l *Lab) Sizes() []platform.MemorySize { return l.provider.DefaultSizes() }

// newEnv builds a fresh simulation environment on the lab's provider.
func (l *Lab) newEnv() *runtime.Env {
	return runtime.NewEnvFor(l.provider.Platform())
}

// harnessOpts builds the dataset-generation harness options.
func (l *Lab) harnessOpts() harness.Options {
	return harness.Options{
		Env:      l.newEnv(),
		Rate:     l.Scale.Rate,
		Duration: l.Scale.Duration,
		Sizes:    l.Sizes(),
		Seed:     l.Scale.Seed,
		Workers:  l.Scale.Workers,
	}
}

// Dataset lazily generates and measures the synthetic training dataset.
// Cancelling ctx aborts a first-time measurement campaign; a cached dataset
// is returned regardless.
func (l *Lab) Dataset(ctx context.Context) (*dataset.Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ds != nil {
		return l.ds, nil
	}
	gen := fngen.New(xrand.New(l.Scale.Seed+1000), fngen.Options{})
	fns, err := gen.Generate(l.Scale.TrainFunctions)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating functions: %w", err)
	}
	specs := make([]*workload.Spec, len(fns))
	for i, fn := range fns {
		specs[i] = fn.Spec
	}
	ds, err := harness.BuildDataset(ctx, l.harnessOpts(), specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: building dataset: %w", err)
	}
	l.ds = ds
	return ds, nil
}

// SetDataset injects a pre-built dataset (e.g. loaded from CSV).
func (l *Lab) SetDataset(ds *dataset.Dataset) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ds = ds
	l.models = make(map[platform.MemorySize]*core.Model)
}

// modelConfig returns the lab's model configuration for a base size.
func (l *Lab) modelConfig(base platform.MemorySize) core.ModelConfig {
	cfg := core.DefaultModelConfig(base)
	cfg.Sizes = l.Sizes()
	cfg.Hidden = l.Scale.Hidden
	cfg.Epochs = l.Scale.Epochs
	cfg.Seed = l.Scale.Seed
	return cfg
}

// Model lazily trains (and caches) the predictor for a base size.
func (l *Lab) Model(ctx context.Context, base platform.MemorySize) (*core.Model, error) {
	ds, err := l.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.models[base]; ok {
		return m, nil
	}
	m, err := core.Train(ctx, ds, l.modelConfig(base))
	if err != nil {
		return nil, fmt.Errorf("experiments: training base %v: %w", base, err)
	}
	l.models[base] = m
	return m, nil
}

// Models trains (and caches) the predictors for several base sizes in one
// shot through the shared training pool — the §4 multi-network workflow.
// Cached bases are skipped; results align with bases.
func (l *Lab) Models(ctx context.Context, bases ...platform.MemorySize) ([]*core.Model, error) {
	ds, err := l.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var jobs []core.TrainJob
	var missing []platform.MemorySize
	for _, base := range bases {
		if _, ok := l.models[base]; !ok {
			jobs = append(jobs, core.TrainJob{Dataset: ds, Config: l.modelConfig(base)})
			missing = append(missing, base)
		}
	}
	if len(jobs) > 0 {
		trained, err := core.TrainModels(ctx, jobs, l.Scale.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: training bases %v: %w", missing, err)
		}
		for i, base := range missing {
			l.models[base] = trained[i]
		}
	}
	out := make([]*core.Model, len(bases))
	for i, base := range bases {
		out[i] = l.models[base]
	}
	return out, nil
}

// CaseStudies lazily measures the four applications at every memory size
// with the scale's repetitions, honouring each app's drift. Cancelling ctx
// stops the campaign between functions.
func (l *Lab) CaseStudies(ctx context.Context) ([]*CaseStudy, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.caseStudies != nil {
		return l.caseStudies, nil
	}
	studies := make([]*CaseStudy, 0, 4)
	for _, app := range apps.All() {
		env := l.newEnv()
		env.Drift = app.Drift
		opts := harness.Options{
			Env:         env,
			Rate:        l.Scale.CaseRate,
			Duration:    l.Scale.CaseDuration,
			Seed:        l.Scale.Seed + 7,
			Workers:     l.Scale.Workers,
			Repetitions: l.Scale.Repetitions,
		}
		cs := &CaseStudy{
			App:      app,
			Measured: make(map[string]map[platform.MemorySize]monitoring.Summary, len(app.Functions)),
		}
		for _, spec := range app.Functions {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: case studies cancelled: %w", err)
			}
			per := make(map[platform.MemorySize]monitoring.Summary, 6)
			for _, m := range l.Sizes() {
				sum, err := harness.MeasureRepeated(opts, spec, m)
				if err != nil {
					return nil, fmt.Errorf("experiments: measuring %s/%s at %v: %w", app.Name, spec.Name, m, err)
				}
				per[m] = sum
			}
			cs.Measured[spec.Name] = per
		}
		studies = append(studies, cs)
	}
	l.caseStudies = studies
	return studies, nil
}
