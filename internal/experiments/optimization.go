package experiments

import (
	"context"
	"fmt"
	"strings"

	"sizeless/internal/optimizer"
	"sizeless/internal/platform"
)

// SelectionRankingResult reproduces Fig. 7: for each tradeoff parameter,
// how many functions had the 1st/2nd/.../6th best memory size selected.
type SelectionRankingResult struct {
	Tradeoffs []float64
	// Counts maps tradeoff → app name → rank histogram (index 0 = best).
	Counts map[float64]map[string][]int
	// OptimalShare and SecondShare are the aggregate fractions across all
	// tradeoffs (the paper reports 79.0% / 12.3%).
	OptimalShare float64
	SecondShare  float64
}

// SelectionRanking applies the §3.5 optimizer to model predictions for all
// 27 case-study functions and ranks the selections against the measured
// optimum, for t ∈ {0.75, 0.5, 0.25}.
func SelectionRanking(ctx context.Context, lab *Lab) (*SelectionRankingResult, error) {
	const base = platform.Mem256
	model, err := lab.Model(ctx, base)
	if err != nil {
		return nil, err
	}
	studies, err := lab.CaseStudies(ctx)
	if err != nil {
		return nil, err
	}
	pricing := lab.Pricing()

	res := &SelectionRankingResult{
		Tradeoffs: []float64{0.75, 0.5, 0.25},
		Counts:    make(map[float64]map[string][]int),
	}
	totalSelections, optimal, second := 0, 0, 0
	for _, t := range res.Tradeoffs {
		perApp := make(map[string][]int)
		for _, cs := range studies {
			hist := make([]int, len(lab.Sizes()))
			for _, spec := range cs.App.Functions {
				pred, err := model.Predict(cs.Measured[spec.Name][base])
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 %s: %w", spec.Name, err)
				}
				rec, err := optimizer.Optimize(pred, pricing, t)
				if err != nil {
					return nil, err
				}
				measured, err := cs.MeasuredTimes(spec.Name)
				if err != nil {
					return nil, err
				}
				rank, err := optimizer.Rank(rec.Best, measured, pricing, t)
				if err != nil {
					return nil, err
				}
				hist[rank-1]++
				totalSelections++
				switch rank {
				case 1:
					optimal++
				case 2:
					second++
				}
			}
			perApp[cs.App.Name] = hist
		}
		res.Counts[t] = perApp
	}
	if totalSelections > 0 {
		res.OptimalShare = float64(optimal) / float64(totalSelections)
		res.SecondShare = float64(second) / float64(totalSelections)
	}
	return res, nil
}

// Render prints the Fig. 7 histograms.
func (r *SelectionRankingResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — rank of the selected memory size (1 = optimal)\n\n")
	for _, tradeoff := range r.Tradeoffs {
		fmt.Fprintf(&b, "t = %.2f\n", tradeoff)
		t := newTable("app", "best", "2nd", "3rd", "4th", "5th", "6th")
		perApp := r.Counts[tradeoff]
		for _, app := range []string{"airline-booking", "facial-recognition", "event-processing", "hello-retail"} {
			hist := perApp[app]
			row := []string{app}
			for _, c := range hist {
				row = append(row, fmt.Sprintf("%d", c))
			}
			t.addRow(row...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "optimal selected: %s (paper: 79.0%%), second-best: %s (paper: 12.3%%)\n",
		pct(r.OptimalShare), pct(r.SecondShare))
	return b.String()
}

// SavingsRow is one Table 8 cell pair.
type SavingsRow struct {
	App         string
	CostSavings map[float64]float64 // tradeoff → fraction
	Speedup     map[float64]float64
}

// SavingsResult reproduces Table 8.
type SavingsResult struct {
	Tradeoffs []float64
	Rows      []SavingsRow
	// All aggregates across applications.
	All SavingsRow
}

// SavingsSpeedup quantifies the benefit of switching each function from
// the monitored base size (256 MB) to the optimizer's selection, per
// tradeoff parameter, averaged per application (Table 8).
func SavingsSpeedup(ctx context.Context, lab *Lab) (*SavingsResult, error) {
	const base = platform.Mem256
	model, err := lab.Model(ctx, base)
	if err != nil {
		return nil, err
	}
	studies, err := lab.CaseStudies(ctx)
	if err != nil {
		return nil, err
	}
	pricing := lab.Pricing()

	res := &SavingsResult{Tradeoffs: []float64{0.75, 0.5, 0.25}}
	res.All = SavingsRow{
		App:         "All Applications",
		CostSavings: make(map[float64]float64),
		Speedup:     make(map[float64]float64),
	}
	totalFns := 0
	for _, cs := range studies {
		row := SavingsRow{
			App:         cs.App.Name,
			CostSavings: make(map[float64]float64),
			Speedup:     make(map[float64]float64),
		}
		for _, tradeoff := range res.Tradeoffs {
			var cost, speed float64
			for _, spec := range cs.App.Functions {
				pred, err := model.Predict(cs.Measured[spec.Name][base])
				if err != nil {
					return nil, err
				}
				rec, err := optimizer.Optimize(pred, pricing, tradeoff)
				if err != nil {
					return nil, err
				}
				measured, err := cs.MeasuredTimes(spec.Name)
				if err != nil {
					return nil, err
				}
				ben, err := optimizer.Benefits(measured, pricing, base, rec.Best)
				if err != nil {
					return nil, err
				}
				cost += ben.CostSavings
				speed += ben.Speedup
				res.All.CostSavings[tradeoff] += ben.CostSavings
				res.All.Speedup[tradeoff] += ben.Speedup
			}
			n := float64(len(cs.App.Functions))
			row.CostSavings[tradeoff] = cost / n
			row.Speedup[tradeoff] = speed / n
		}
		totalFns += len(cs.App.Functions)
		res.Rows = append(res.Rows, row)
	}
	for _, tradeoff := range res.Tradeoffs {
		res.All.CostSavings[tradeoff] /= float64(totalFns)
		res.All.Speedup[tradeoff] /= float64(totalFns)
	}
	return res, nil
}

// Render prints Table 8.
func (r *SavingsResult) Render() string {
	header := []string{"application"}
	for _, t := range r.Tradeoffs {
		header = append(header, fmt.Sprintf("t=%.2f cost", t), fmt.Sprintf("t=%.2f speed", t))
	}
	t := newTable(header...)
	addRow := func(row SavingsRow) {
		cells := []string{row.App}
		for _, tr := range r.Tradeoffs {
			cells = append(cells, pct(row.CostSavings[tr]), pct(row.Speedup[tr]))
		}
		t.addRow(cells...)
	}
	for _, row := range r.Rows {
		addRow(row)
	}
	addRow(r.All)
	return fmt.Sprintf("Table 8 — cost savings and speedup vs the monitored base size\n\n%s", t)
}
