package experiments

import (
	"context"
	"fmt"
	"strings"

	"sizeless/internal/baselines"
	"sizeless/internal/optimizer"
	"sizeless/internal/platform"
)

// BaselineComparisonRow summarizes one approach over all 27 functions.
type BaselineComparisonRow struct {
	Name string
	// MeasurementsPerFunction is the number of dedicated performance tests
	// each approach needs per function (Sizeless: 0 — it reuses production
	// monitoring from one size).
	MeasurementsPerFunction float64
	// OptimalShare is the fraction of functions where the approach picked
	// the measured optimum.
	OptimalShare float64
	// MeanRegret is the mean S_total(selected)/S_total(optimal) − 1.
	MeanRegret float64
}

// BaselineComparisonResult is the A3 extension experiment: Sizeless vs
// Power Tuning vs COSE vs BATCH on the case-study functions.
type BaselineComparisonResult struct {
	Tradeoff float64
	Rows     []BaselineComparisonRow
}

// BaselineComparison runs all four approaches on every case-study function
// at the paper-recommended tradeoff t = 0.75.
func BaselineComparison(ctx context.Context, lab *Lab) (*BaselineComparisonResult, error) {
	const tradeoff = 0.75
	const base = platform.Mem256
	model, err := lab.Model(ctx, base)
	if err != nil {
		return nil, err
	}
	studies, err := lab.CaseStudies(ctx)
	if err != nil {
		return nil, err
	}
	pricing := lab.Pricing()
	resModel := lab.Provider().Platform().Resources
	sizes := lab.Sizes()

	type agg struct {
		meas    float64
		optimal int
		regret  float64
		n       int
	}
	aggs := map[string]*agg{
		"sizeless":     {},
		"power-tuning": {},
		"cose":         {},
		"batch":        {},
	}

	score := func(name string, selected platform.MemorySize, measured map[platform.MemorySize]float64, measurements int) error {
		a := aggs[name]
		a.n++
		a.meas += float64(measurements)
		rank, err := optimizer.Rank(selected, measured, pricing, tradeoff)
		if err != nil {
			return err
		}
		if rank == 1 {
			a.optimal++
		}
		rec, err := optimizer.Optimize(measured, pricing, tradeoff)
		if err != nil {
			return err
		}
		var selTotal, bestTotal float64
		for _, o := range rec.Options {
			if o.Memory == selected {
				selTotal = o.STotal
			}
			if o.Memory == rec.Best {
				bestTotal = o.STotal
			}
		}
		if bestTotal > 0 {
			a.regret += selTotal/bestTotal - 1
		}
		return nil
	}

	for _, cs := range studies {
		for _, spec := range cs.App.Functions {
			measured, err := cs.MeasuredTimes(spec.Name)
			if err != nil {
				return nil, err
			}
			table := baselines.TableMeasurer(measured)

			// Sizeless: predictions from the single monitored size; no
			// dedicated performance tests.
			pred, err := model.Predict(cs.Measured[spec.Name][base])
			if err != nil {
				return nil, err
			}
			rec, err := optimizer.Optimize(pred, pricing, tradeoff)
			if err != nil {
				return nil, err
			}
			if err := score("sizeless", rec.Best, measured, 0); err != nil {
				return nil, err
			}

			pt, err := baselines.PowerTuning(table, sizes, pricing, tradeoff)
			if err != nil {
				return nil, err
			}
			if err := score("power-tuning", pt.Recommendation.Best, measured, pt.MeasurementsUsed); err != nil {
				return nil, err
			}

			cose, err := baselines.COSE(table, sizes, resModel, pricing, tradeoff, 4)
			if err != nil {
				return nil, err
			}
			if err := score("cose", cose.Recommendation.Best, measured, cose.MeasurementsUsed); err != nil {
				return nil, err
			}

			batch, err := baselines.BATCH(table, sizes, pricing, tradeoff, nil)
			if err != nil {
				return nil, err
			}
			if err := score("batch", batch.Recommendation.Best, measured, batch.MeasurementsUsed); err != nil {
				return nil, err
			}
		}
	}

	res := &BaselineComparisonResult{Tradeoff: tradeoff}
	for _, name := range []string{"sizeless", "power-tuning", "cose", "batch"} {
		a := aggs[name]
		if a.n == 0 {
			return nil, fmt.Errorf("experiments: baseline %s scored no functions", name)
		}
		res.Rows = append(res.Rows, BaselineComparisonRow{
			Name:                    name,
			MeasurementsPerFunction: a.meas / float64(a.n),
			OptimalShare:            float64(a.optimal) / float64(a.n),
			MeanRegret:              a.regret / float64(a.n),
		})
	}
	return res, nil
}

// Render prints the comparison.
func (r *BaselineComparisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Baseline comparison (t = %.2f) — measurements needed vs selection quality\n\n", r.Tradeoff)
	t := newTable("approach", "perf tests/function", "optimal selected", "mean regret")
	for _, row := range r.Rows {
		t.addRow(row.Name,
			fmt.Sprintf("%.1f", row.MeasurementsPerFunction),
			pct(row.OptimalShare),
			fmt.Sprintf("%.3f", row.MeanRegret))
	}
	b.WriteString(t.String())
	return b.String()
}
