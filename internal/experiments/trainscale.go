package experiments

import (
	"context"
	"fmt"
	"time"

	"sizeless/internal/core"
	"sizeless/internal/platform"
)

// TrainScaleRow is one measured cell of the training-engine scaling table.
type TrainScaleRow struct {
	// Batch is the mini-batch size the GEMM engine processed per step.
	Batch int
	// Elapsed is the wall time of training one model (single ensemble
	// member) on the lab dataset.
	Elapsed time.Duration
	// EpochsPerSec is the training throughput.
	EpochsPerSec float64
	// Speedup is EpochsPerSec relative to the batch-1 row — batch 1
	// degenerates the GEMM engine to per-sample updates, so the column
	// reads as "what mini-batch vectorization buys".
	Speedup float64
}

// TrainScaleResult is the train-scale experiment output: engine throughput
// across mini-batch sizes, plus the fine-tune timing of the same engine
// with frozen layers skipping backward compute.
type TrainScaleResult struct {
	Epochs   int
	Rows     []TrainScaleRow
	FineTune time.Duration
	// FineTuneEpochs is the adaptation budget behind FineTune.
	FineTuneEpochs int
}

// TrainScale measures the mini-batch training engine (benchreport id
// "train-scale"): one model per batch size through core.Train, then one
// frozen-half fine-tune — the workflow trajectory behind BENCH_train.json.
// Note that batch size changes the optimizer's step count, so the rows
// compare engine throughput, not final model quality.
func TrainScale(ctx context.Context, l *Lab) (*TrainScaleResult, error) {
	ds, err := l.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	base := platform.Nearest(platform.Mem256, l.Sizes())
	cfg := l.modelConfig(base)
	cfg.EnsembleSize = 1
	cfg.Epochs = min(l.Scale.Epochs, 150)

	res := &TrainScaleResult{Epochs: cfg.Epochs}
	var model *core.Model
	for _, batch := range []int{1, 8, 32, 128} {
		c := cfg
		c.BatchSize = batch
		start := time.Now()
		m, err := core.Train(ctx, ds, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: train-scale batch %d: %w", batch, err)
		}
		elapsed := time.Since(start)
		row := TrainScaleRow{
			Batch:        batch,
			Elapsed:      elapsed,
			EpochsPerSec: float64(cfg.Epochs) / elapsed.Seconds(),
		}
		if len(res.Rows) > 0 {
			row.Speedup = row.EpochsPerSec / res.Rows[0].EpochsPerSec
		} else {
			row.Speedup = 1
		}
		res.Rows = append(res.Rows, row)
		if batch == 32 {
			model = m
		}
	}

	// Fine-tune the batch-32 model on a fifth of the corpus with the
	// default frozen-half split: the engine's freeze fast path.
	adaptN := len(ds.Rows) / 5
	if adaptN < 2 {
		adaptN = 2
	}
	idx := make([]int, adaptN)
	for i := range idx {
		idx[i] = i
	}
	res.FineTuneEpochs = min(cfg.Epochs, 50)
	start := time.Now()
	if _, err := core.FineTune(ctx, model, ds.Subset(idx), core.FineTuneOptions{
		Epochs: res.FineTuneEpochs,
	}); err != nil {
		return nil, fmt.Errorf("experiments: train-scale fine-tune: %w", err)
	}
	res.FineTune = time.Since(start)
	return res, nil
}

// Render prints the throughput table.
func (r *TrainScaleResult) Render() string {
	t := newTable("batch", "elapsed", "epochs/s", "speedup vs batch-1")
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%d", row.Batch),
			row.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", row.EpochsPerSec),
			fmt.Sprintf("%.2fx", row.Speedup),
		)
	}
	return fmt.Sprintf(
		"Mini-batch training engine throughput (%d epochs, single ensemble member):\n\n%s\nfrozen-half fine-tune (%d epochs, 1/5 corpus): %v\n",
		r.Epochs, t.String(), r.FineTuneEpochs, r.FineTune.Round(time.Millisecond))
}
