package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestIngestScale(t *testing.T) {
	lab := sharedLab(t)
	res, err := IngestScale(context.Background(), lab)
	if err != nil {
		t.Fatal(err)
	}
	// Two fleet sizes × three configurations.
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Throughput <= 0 {
			t.Errorf("fleet %d shards %d: non-positive throughput %v", row.Fleet, row.Shards, row.Throughput)
		}
		if row.Speedup <= 0 {
			t.Errorf("fleet %d shards %d: missing speedup", row.Fleet, row.Shards)
		}
	}
	// The baseline rows are pinned at 1.00x by construction.
	if res.Rows[0].Shards != 1 || res.Rows[0].Speedup != 1 {
		t.Errorf("first row should be the 1-shard baseline at 1x, got %+v", res.Rows[0])
	}
	out := res.Render()
	for _, want := range []string{"fleet", "shards", "workers", "fns/s", "speedup", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
