package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"sizeless/internal/platform"
)

// tinyMatrixScale keeps the 3×3 matrix affordable in unit tests: three
// providers × (train + adapt + test) campaigns on a four-size shared grid.
func tinyMatrixScale() Scale {
	return Scale{
		Name:           "tiny",
		TrainFunctions: 100,
		Rate:           10,
		Duration:       5 * time.Second,
		Hidden:         []int{48, 48},
		Epochs:         300,
		Seed:           1,
	}
}

func TestTransferMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("transfer matrix runs nine measurement campaigns")
	}
	lab := NewLab(tinyMatrixScale())
	res, err := TransferMatrix(context.Background(), lab)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Providers) != 3 {
		t.Fatalf("providers = %v, want the three built-ins", res.Providers)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(res.Cells))
	}
	wantSizes := []platform.MemorySize{128, 256, 512, 1024}
	if len(res.Sizes) != len(wantSizes) {
		t.Fatalf("shared grid = %v, want %v", res.Sizes, wantSizes)
	}
	for i, m := range wantSizes {
		if res.Sizes[i] != m {
			t.Fatalf("shared grid = %v, want %v", res.Sizes, wantSizes)
		}
	}
	if res.Base != platform.Mem256 {
		t.Errorf("base = %v, want 256MB", res.Base)
	}

	for _, c := range res.Cells {
		for name, m := range map[string]float64{
			"stale": c.Stale.MAPE, "fine-tuned": c.FineTuned.MAPE, "from-scratch": c.FromScratch.MAPE,
		} {
			if m <= 0 {
				t.Errorf("%s→%s %s MAPE = %v, want positive", c.Source, c.Target, name, m)
			}
		}
		if !c.OffDiagonal() {
			// On the diagonal the stale model is already well-matched, so
			// fine-tuning can only add small-corpus overfitting noise; it
			// must stay the same order of magnitude, not wreck the model.
			if c.FineTuned.MAPE > c.Stale.MAPE*2.5 {
				t.Errorf("%s→%s diagonal fine-tune degraded badly: stale %.4f vs tuned %.4f",
					c.Source, c.Target, c.Stale.MAPE, c.FineTuned.MAPE)
			}
			continue
		}
		// The headline claim: across a provider change, adapting on a small
		// target corpus beats using the source model as-is.
		if c.FineTuned.MAPE >= c.Stale.MAPE {
			t.Errorf("%s→%s fine-tuned MAPE %.4f should beat stale %.4f",
				c.Source, c.Target, c.FineTuned.MAPE, c.Stale.MAPE)
		}
	}

	out := res.Render()
	for _, want := range []string{"transfer matrix", "aws-lambda", "gcp-cloudfunctions", "azure-functions", "fine-tuned"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
