package experiments

import (
	"context"
	"fmt"
	"strings"

	"sizeless/internal/core"
	"sizeless/internal/features"
	"sizeless/internal/monitoring"
	"sizeless/internal/nn"
	"sizeless/internal/optimizer"
	"sizeless/internal/platform"
	"sizeless/internal/stats"
	"sizeless/internal/xrand"
)

// AblationTargetsResult compares the paper's ratio-target preprocessing
// (§3.4) against predicting absolute execution times (extension A1).
type AblationTargetsResult struct {
	// RatioMAPE is the CV MAPE of the ratio-target model evaluated on
	// absolute times.
	RatioMAPE float64
	// AbsoluteMAPE is the CV MAPE of an absolute-time model.
	AbsoluteMAPE float64
}

// AblationTargets trains both variants with matched budgets under k-fold CV
// and scores both on absolute execution times.
func AblationTargets(ctx context.Context, lab *Lab, k int) (*AblationTargetsResult, error) {
	ds, err := lab.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	const base = platform.Mem256
	cfg := lab.modelConfig(base)
	targets := features.TargetSizes(ds.Sizes, base)

	folds, err := ds.KFold(k, xrand.New(lab.Scale.Seed+31).Derive("ablation-targets"))
	if err != nil {
		return nil, err
	}

	var ratioPreds, absPreds, truths []float64
	for fi, fold := range folds {
		train := ds.Complement(fold)
		test := ds.Subset(fold)

		// Variant 1: paper pipeline (ratio targets).
		rCfg := cfg
		rCfg.Seed = cfg.Seed + int64(fi)
		ratioModel, err := core.Train(ctx, train, rCfg)
		if err != nil {
			return nil, err
		}

		// Variant 2: absolute-time targets on the same features.
		x, err := features.Matrix(train, base, cfg.Features)
		if err != nil {
			return nil, err
		}
		yAbs := make([][]float64, len(train.Rows))
		for i, row := range train.Rows {
			vec := make([]float64, len(targets))
			for j, m := range targets {
				t, _ := row.ExecTimeMs(m)
				vec[j] = t
			}
			yAbs[i] = vec
		}
		scaler, err := nn.FitScaler(x)
		if err != nil {
			return nil, err
		}
		xs, err := scaler.TransformBatch(x)
		if err != nil {
			return nil, err
		}
		absNet, err := nn.New(nn.Config{
			Inputs: len(cfg.Features), Outputs: len(targets),
			Hidden: cfg.Hidden, Optimizer: cfg.Optimizer, Loss: cfg.Loss,
			L2: cfg.L2, Epochs: cfg.Epochs, Seed: cfg.Seed + int64(fi),
		})
		if err != nil {
			return nil, err
		}
		if _, err := absNet.Train(ctx, xs, yAbs); err != nil {
			return nil, err
		}

		for _, row := range test.Rows {
			s := row.Summaries[base]
			baseMs := s.Mean[monitoring.ExecutionTime]
			pred, err := ratioModel.PredictRatios(s)
			if err != nil {
				return nil, err
			}
			vec := make([]float64, len(cfg.Features))
			for j, f := range cfg.Features {
				vec[j] = f.Extract(s)
			}
			scaled, err := scaler.Transform(vec)
			if err != nil {
				return nil, err
			}
			absPred, err := absNet.Predict(scaled)
			if err != nil {
				return nil, err
			}
			for j, m := range targets {
				truth, _ := row.ExecTimeMs(m)
				truths = append(truths, truth)
				ratioPreds = append(ratioPreds, pred[j]*baseMs)
				ap := absPred[j]
				if ap < 1e-3 {
					ap = 1e-3
				}
				absPreds = append(absPreds, ap)
			}
		}
	}

	res := &AblationTargetsResult{}
	if res.RatioMAPE, err = stats.MAPE(ratioPreds, truths); err != nil {
		return nil, err
	}
	if res.AbsoluteMAPE, err = stats.MAPE(absPreds, truths); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints A1.
func (r *AblationTargetsResult) Render() string {
	t := newTable("target encoding", "CV MAPE on absolute times")
	t.addRow("ratios (paper §3.4)", pct(r.RatioMAPE))
	t.addRow("absolute times", pct(r.AbsoluteMAPE))
	return fmt.Sprintf("Ablation A1 — ratio targets vs absolute-time targets\n\n%s", t)
}

// AblationFeaturesResult compares the reduced six-metric feature set (F4)
// against all 25 raw mean metrics (F0) — extension A2.
type AblationFeaturesResult struct {
	F4 core.CVMetrics
	F0 core.CVMetrics
}

// AblationFeatures runs CV for both feature sets with matched budgets.
func AblationFeatures(ctx context.Context, lab *Lab, k int) (*AblationFeaturesResult, error) {
	ds, err := lab.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	const base = platform.Mem256
	f4 := lab.modelConfig(base)
	f0 := f4
	f0.Features = features.MeanFeatures()

	res := &AblationFeaturesResult{}
	if res.F4, err = core.CrossValidate(ctx, ds, f4, k, 1, lab.Scale.Seed+37); err != nil {
		return nil, err
	}
	if res.F0, err = core.CrossValidate(ctx, ds, f0, k, 1, lab.Scale.Seed+37); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints A2.
func (r *AblationFeaturesResult) Render() string {
	t := newTable("feature set", "MSE", "MAPE", "R2")
	t.addRow("F4-style reduced set (rates + std/CoV)",
		fmt.Sprintf("%.4f", r.F4.MSE), fmt.Sprintf("%.4f", r.F4.MAPE), fmt.Sprintf("%.4f", r.F4.R2))
	t.addRow("F0 (all 25 mean metrics)",
		fmt.Sprintf("%.4f", r.F0.MSE), fmt.Sprintf("%.4f", r.F0.MAPE), fmt.Sprintf("%.4f", r.F0.R2))
	return fmt.Sprintf("Ablation A2 — reduced feature set vs all raw metrics\n\n%s", t)
}

// AblationIncrementsResult probes the §5 limitation: interpolating the
// 64 MB-increment sizes from the six predicted anchors (extension A4).
type AblationIncrementsResult struct {
	// Functions analyzed.
	Functions int
	// ChangedSelection counts functions whose optimal size moved off the
	// six-size grid when 46 sizes were considered.
	ChangedSelection int
	// MeanExtraSavings is the mean S_total improvement from the finer grid
	// (non-negative by construction on interpolated curves).
	MeanExtraSavings float64
}

// AblationIncrements fits the BATCH-style polynomial through the model's
// six predicted times and optimizes over all 46 sizes.
func AblationIncrements(ctx context.Context, lab *Lab) (*AblationIncrementsResult, error) {
	const base = platform.Mem256
	const tradeoff = 0.75
	model, err := lab.Model(ctx, base)
	if err != nil {
		return nil, err
	}
	studies, err := lab.CaseStudies(ctx)
	if err != nil {
		return nil, err
	}
	pricing := lab.Pricing()

	res := &AblationIncrementsResult{}
	for _, cs := range studies {
		for _, spec := range cs.App.Functions {
			pred, err := model.Predict(cs.Measured[spec.Name][base])
			if err != nil {
				return nil, err
			}
			// Coarse optimum over the six predicted sizes.
			coarse, err := optimizer.Optimize(pred, pricing, tradeoff)
			if err != nil {
				return nil, err
			}
			// Fit t(1/m) through the six anchors, degree 2 (the BATCH
			// interpolation the paper's §5 suggests).
			xs := make([]float64, 0, len(pred))
			ys := make([]float64, 0, len(pred))
			for _, m := range lab.Sizes() {
				xs = append(xs, 1/float64(m))
				ys = append(ys, pred[m])
			}
			coef, err := stats.PolyFit(xs, ys, 2)
			if err != nil {
				return nil, err
			}
			fine := make(map[platform.MemorySize]float64)
			for _, m := range platform.AllSizes64MB() {
				if t, ok := pred[m]; ok {
					fine[m] = t
					continue
				}
				t := stats.PolyEval(coef, 1/float64(m))
				if t < 1e-3 {
					t = 1e-3
				}
				fine[m] = t
			}
			fineRec, err := optimizer.Optimize(fine, pricing, tradeoff)
			if err != nil {
				return nil, err
			}
			res.Functions++
			if fineRec.Best != coarse.Best {
				res.ChangedSelection++
				// Compare S_total of the coarse choice inside the fine grid.
				var coarseTotal, fineTotal float64
				for _, o := range fineRec.Options {
					if o.Memory == coarse.Best {
						coarseTotal = o.STotal
					}
					if o.Memory == fineRec.Best {
						fineTotal = o.STotal
					}
				}
				if coarseTotal > 0 {
					res.MeanExtraSavings += 1 - fineTotal/coarseTotal
				}
			}
		}
	}
	if res.ChangedSelection > 0 {
		res.MeanExtraSavings /= float64(res.ChangedSelection)
	}
	return res, nil
}

// Render prints A4.
func (r *AblationIncrementsResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation A4 — 64MB-increment interpolation (46 sizes vs 6)\n\n")
	t := newTable("metric", "value")
	t.addRow("functions analyzed", fmt.Sprintf("%d", r.Functions))
	t.addRow("selection moved off 6-size grid", fmt.Sprintf("%d", r.ChangedSelection))
	t.addRow("mean S_total improvement when moved", pct(r.MeanExtraSavings))
	b.WriteString(t.String())
	return b.String()
}
