package experiments

import (
	"context"
	"fmt"
	"strings"

	"sizeless/internal/apps"
	"sizeless/internal/dag"
	"sizeless/internal/harness"
	"sizeless/internal/monitoring"
	"sizeless/internal/platform"
	"sizeless/internal/runtime"
)

// AppPlanCell is one application × provider entry of the app matrix: the
// three-way planning comparison over that provider's grid and pricing.
type AppPlanCell struct {
	App      string
	Provider string
	// Plans is the shared-normalization comparison: per-function-optimal,
	// application-optimal (sizes only), application-optimal (sizes +
	// fusion).
	Plans *dag.Comparison
}

// AppMatrixResult is the headline application-level table: per-function
// vs application-level planning across the case-study apps × providers.
type AppMatrixResult struct {
	Providers []string
	Apps      []string
	Tradeoff  float64
	Cells     []AppPlanCell
}

// Cell returns the app × provider cell, or nil if absent.
func (r *AppMatrixResult) Cell(app, provider string) *AppPlanCell {
	for i := range r.Cells {
		if r.Cells[i].App == app && r.Cells[i].Provider == provider {
			return &r.Cells[i]
		}
	}
	return nil
}

// AppMatrix measures every case-study application on each provider and
// plans it three ways under the §3.5 tradeoff objective lifted to the
// application level: sizing each function independently (the paper's
// optimizer), jointly sizing all functions under the end-to-end
// latency/cost model, and jointly choosing sizes plus fusion decisions
// over the app's DAG. Functions are measured at the provider's grid in a
// drift-adjusted environment (one repetition — the planner consumes mean
// execution times); planning replays seeded arrival schedules through the
// warm-pool cold-start model, so the whole matrix is deterministic per
// scale seed. Defaults to the three built-in providers when none are
// given.
func AppMatrix(ctx context.Context, lab *Lab, providers ...platform.Provider) (*AppMatrixResult, error) {
	if len(providers) == 0 {
		providers = []platform.Provider{
			platform.AWSLambda(), platform.GCPCloudFunctions(), platform.AzureFunctions(),
		}
	}
	scale := lab.Scale
	res := &AppMatrixResult{Tradeoff: dag.DefaultTradeoff}
	for _, p := range providers {
		res.Providers = append(res.Providers, p.Name())
	}
	for _, app := range apps.All() {
		res.Apps = append(res.Apps, app.Name)
	}

	for _, p := range providers {
		sizes := p.DefaultSizes()
		for _, app := range apps.All() {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: app matrix cancelled: %w", err)
			}
			env := runtime.NewEnvFor(p.Platform())
			env.Drift = app.Drift
			opts := harness.Options{
				Env:      env,
				Rate:     scale.CaseRate,
				Duration: scale.CaseDuration,
				Seed:     scale.Seed + 7,
				Workers:  scale.Workers,
			}
			times := make(map[string]map[platform.MemorySize]float64, len(app.Functions))
			for _, spec := range app.Functions {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("experiments: app matrix cancelled: %w", err)
				}
				per := make(map[platform.MemorySize]float64, len(sizes))
				for _, m := range sizes {
					sum, err := harness.MeasureRepeated(opts, spec, m)
					if err != nil {
						return nil, fmt.Errorf("experiments: app matrix measuring %s/%s at %v on %s: %w",
							app.Name, spec.Name, m, p.Name(), err)
					}
					per[m] = sum.Mean[monitoring.ExecutionTime]
				}
				times[spec.Name] = per
			}
			g, err := app.Graph(times)
			if err != nil {
				return nil, err
			}
			cmp, err := dag.Compare(ctx, g, dag.Config{
				Platform: p.Platform(),
				Sizes:    sizes,
				Rate:     app.Rate,
				Seed:     scale.Seed,
				Workers:  scale.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: app matrix planning %s on %s: %w", app.Name, p.Name(), err)
			}
			res.Cells = append(res.Cells, AppPlanCell{App: app.Name, Provider: p.Name(), Plans: cmp})
		}
	}
	return res, nil
}

// delta formats a relative change of got vs base (negative = improvement).
func delta(base, got float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (got-base)/base*100)
}

// Render prints one table per provider: the per-function baseline's
// absolute end-to-end cost/latency and each application-level plan's
// relative change, plus how many units the fused plan deploys.
func (r *AppMatrixResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "App matrix — per-function vs application-level planning (t = %.2f)\n", r.Tradeoff)
	b.WriteString("cost is USD per application request; latency the DAG critical path\n\n")
	for _, prov := range r.Providers {
		fmt.Fprintf(&b, "%s\n", prov)
		t := newTable("app", "perfn cost", "perfn lat",
			"app-sizes cost", "app-sizes lat", "fused cost", "fused lat", "units", "inv/req")
		for _, app := range r.Apps {
			cell := r.Cell(app, prov)
			if cell == nil {
				continue
			}
			pf, so, fu := cell.Plans.PerFunction, cell.Plans.SizesOnly, cell.Plans.Fused
			t.addRow(app,
				fmt.Sprintf("%.3g", pf.CostPerReq), ms(pf.LatencyMs),
				delta(pf.CostPerReq, so.CostPerReq), delta(pf.LatencyMs, so.LatencyMs),
				delta(pf.CostPerReq, fu.CostPerReq), delta(pf.LatencyMs, fu.LatencyMs),
				fmt.Sprintf("%d(%d fused)", len(fu.Groups), fu.FusedUnits()),
				fmt.Sprintf("%.0f→%.0f", pf.InvocationsPerReq, fu.InvocationsPerReq),
			)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
