package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"sizeless/internal/fleetsynth"
)

// The drift regression tests below run the full scenario traffic through
// the default-config detector without a lab (no dataset, no training), so
// they stay in the -short / -race CI budget.

func scenarioByName(t *testing.T, name string) scenario {
	t.Helper()
	table, err := scenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range table {
		if sc.name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in table", name)
	return scenario{}
}

// TestDriftWalkDiurnalNoFalsePositives pins the false-positive bound:
// pure diurnal rate modulation alone must never fire the detector — the
// arrival rate breathes but the metric distribution is unchanged, and a
// recommender that recomputes on traffic shape alone would thrash.
func TestDriftWalkDiurnalNoFalsePositives(t *testing.T) {
	for _, name := range []string{"diurnal", "stationary", "spiky", "trace-replay"} {
		t.Run(name, func(t *testing.T) {
			windows, _, err := scenarioWindows(scenarioByName(t, name), 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := driftWalk(windows, -1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Evaluated == 0 {
				t.Fatal("detector never evaluated a window")
			}
			if res.FalsePositives != 0 {
				t.Errorf("%d false positives over %d evaluated windows (fires at %v), want 0",
					res.FalsePositives, res.Evaluated, res.Fires)
			}
		})
	}
}

// TestDriftWalkDetectsShiftUnderSpikyTraffic pins the detection-latency
// bound: a ×3 metric shift injected mid-spike must be caught within
// DetectionWindowBound windows, with no false positives before it.
func TestDriftWalkDetectsShiftUnderSpikyTraffic(t *testing.T) {
	sc := scenarioByName(t, "spiky-shift")
	windows, _, err := scenarioWindows(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := driftWalk(windows, sc.shiftWindow)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("%d false positives before the shift (fires at %v), want 0", res.FalsePositives, res.Fires)
	}
	if res.DetectedWindow < 0 {
		t.Fatalf("injected shift at window %d never detected (fires: %v)", sc.shiftWindow, res.Fires)
	}
	if res.Latency < 1 || res.Latency > DetectionWindowBound {
		t.Errorf("detection latency %d windows (detected at w%d), want within [1, %d]",
			res.Latency, res.DetectedWindow, DetectionWindowBound)
	}
}

// TestScenarioWindowsDeterministic locks in bit-identical scenario traffic
// for identical seeds across every scenario in the table.
func TestScenarioWindowsDeterministic(t *testing.T) {
	table, err := scenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range table {
		a, schedA, err := scenarioWindows(sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, schedB, err := scenarioWindows(sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(schedA) != len(schedB) || len(a) != len(b) {
			t.Fatalf("%s: identical seeds disagree on shape", sc.name)
		}
		for w := range a {
			if len(a[w]) != len(b[w]) {
				t.Fatalf("%s: window %d sizes differ", sc.name, w)
			}
			for i := range a[w] {
				if a[w][i] != b[w][i] {
					t.Fatalf("%s: window %d invocation %d differs", sc.name, w, i)
				}
			}
		}
	}
}

// TestScenarioColdStartsLoadDependent pins the warm-pool model's headline
// property at the scenario scale: sparse traffic pays cold starts on idle
// gaps, steady moderate traffic stays warm.
func TestScenarioColdStartsLoadDependent(t *testing.T) {
	coldFrac := func(name string) float64 {
		windows, sched, err := scenarioWindows(scenarioByName(t, name), 1)
		if err != nil {
			t.Fatal(err)
		}
		colds := 0
		for _, invs := range windows {
			colds += fleetsynth.ColdStarts(invs)
		}
		if len(sched) == 0 {
			t.Fatalf("%s: no arrivals", name)
		}
		return float64(colds) / float64(len(sched))
	}
	sparse, stationary := coldFrac("sparse"), coldFrac("stationary")
	if sparse < 0.05 {
		t.Errorf("sparse cold fraction %.3f, want ≥ 0.05 (idle-gap cold starts)", sparse)
	}
	// Steady 20 rps still pays occasional concurrency cold starts
	// (~3 invocations in flight), but the warm pool absorbs the bulk.
	if stationary > 0.03 {
		t.Errorf("stationary cold fraction %.3f, want ≤ 0.03 (warm pool holds)", stationary)
	}
	if sparse < 5*stationary {
		t.Errorf("sparse cold fraction %.3f not ≫ stationary %.3f", sparse, stationary)
	}
}

// TestScenarioRealizedRates cross-checks every scenario's realized arrival
// count against its profile's integrated rate (4σ Poisson tolerance).
func TestScenarioRealizedRates(t *testing.T) {
	table, err := scenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range table {
		_, sched, err := scenarioWindows(sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := sc.profile.Integral(0, scenarioHorizon)
		if got := float64(len(sched)); math.Abs(got-want) > 4*math.Sqrt(want) {
			t.Errorf("%s: %v arrivals, want %.0f ± %.0f", sc.name, got, want, 4*math.Sqrt(want))
		}
	}
}

// TestScenarioMatrix is the lab acceptance test: the full experiment under
// a trained model, asserting the false-positive bound, the detection
// latency bound, byte-identical renders for identical seeds, and sane cost
// accounting.
func TestScenarioMatrix(t *testing.T) {
	lab := sharedLab(t)
	ctx := context.Background()
	res, err := ScenarioMatrix(ctx, lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 6 {
		t.Fatalf("have %d scenarios, want 6", len(res.Scenarios))
	}
	byName := make(map[string]ScenarioOutcome, len(res.Scenarios))
	for _, s := range res.Scenarios {
		byName[s.Name] = s
	}

	// (a) Zero drift false positives under pure diurnal load at the
	// default detector config.
	diurnal := byName["diurnal"]
	if diurnal.Drift.Evaluated == 0 {
		t.Fatal("diurnal: detector never evaluated")
	}
	if diurnal.Drift.FalsePositives != 0 {
		t.Errorf("diurnal: %d false positives, want 0", diurnal.Drift.FalsePositives)
	}

	// (b) Injected shift under spiky traffic detected within the
	// documented window bound.
	shift := byName["spiky-shift"]
	if shift.Drift.DetectedWindow < 0 {
		t.Fatal("spiky-shift: injected shift not detected")
	}
	if shift.Drift.Latency < 1 || shift.Drift.Latency > DetectionWindowBound {
		t.Errorf("spiky-shift: detection latency %d, want within [1, %d]", shift.Drift.Latency, DetectionWindowBound)
	}
	if shift.Drift.FalsePositives != 0 {
		t.Errorf("spiky-shift: %d false positives before the shift", shift.Drift.FalsePositives)
	}
	if len(shift.Drift.Fires) < 1 {
		t.Error("spiky-shift: detector policy never recomputed")
	}

	// Regret accounting: the detector policy can never do worse than the
	// frozen policy on the shifted scenario, and regrets are non-negative.
	for _, s := range res.Scenarios {
		if s.StaleRegret < 0 || s.DetectorRegret < 0 {
			t.Errorf("%s: negative regret (stale %v, detector %v)", s.Name, s.StaleRegret, s.DetectorRegret)
		}
	}
	if shift.DetectorRegret > shift.StaleRegret+1e-12 {
		t.Errorf("spiky-shift: detector regret %v exceeds stale regret %v", shift.DetectorRegret, shift.StaleRegret)
	}

	// Cold-start load dependence feeds provider cost scoring: the sparse
	// scenario's cold overhead must dominate the stationary one on every
	// provider.
	sparse, stationary := byName["sparse"], byName["stationary"]
	for _, p := range res.Providers {
		if sparse.ColdOverhead[p] <= stationary.ColdOverhead[p] {
			t.Errorf("%s: sparse cold overhead %.4f not above stationary %.4f",
				p, sparse.ColdOverhead[p], stationary.ColdOverhead[p])
		}
	}

	// (c) Identical seeds reproduce the full scenario table byte-for-byte.
	again, err := ScenarioMatrix(ctx, lab)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := res.Render(), again.Render()
	if r1 != r2 {
		t.Error("identical seeds rendered different scenario tables")
	}
	for _, want := range []string{"stationary", "diurnal", "spiky-shift", "trace-replay", "cold frac", "stale regret"} {
		if !strings.Contains(r1, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestDriftWalkSparseSkipsSmallWindows pins the window-size guard: the
// sparse scenario's windows are below the detector's 20-sample floor, so
// the walk must skip rather than error.
func TestDriftWalkSparseSkipsSmallWindows(t *testing.T) {
	windows, _, err := scenarioWindows(scenarioByName(t, "sparse"), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := driftWalk(windows, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("sparse: %d false positives, want 0", res.FalsePositives)
	}
	if res.Skipped == 0 {
		t.Error("sparse: expected sub-20-sample windows to be skipped")
	}
}
