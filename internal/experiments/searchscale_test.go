package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestSearchScale asserts the experiment's headline properties rather than
// just logging them: successive halving spends at most half the exhaustive
// epoch budget, and its winner's validation MSE lands within 5% of the
// exhaustive winner's.
func TestSearchScale(t *testing.T) {
	lab := sharedLab(t)
	res, err := SearchScale(context.Background(), lab)
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSize != 8 {
		t.Fatalf("grid size %d, want 8", res.GridSize)
	}
	if res.Budget%4 != 0 {
		t.Errorf("budget %d not divisible by 4 — the halving schedule would round", res.Budget)
	}
	if 2*res.HalvingEpochs > res.ExhaustiveEpochs {
		t.Errorf("halving spent %d epochs, more than half of exhaustive %d",
			res.HalvingEpochs, res.ExhaustiveEpochs)
	}
	if res.WinnerGap > 0.05 {
		t.Errorf("halving winner val MSE %.1f%% above exhaustive winner, want ≤ 5%%", 100*res.WinnerGap)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("got %d halving rounds, want 3 (1/4, 1/2, 1)", len(res.Rounds))
	}
	if res.Rounds[0].Configs != 8 || res.Rounds[1].Configs != 4 || res.Rounds[2].Configs != 2 {
		t.Errorf("survivor schedule %d/%d/%d, want 8/4/2",
			res.Rounds[0].Configs, res.Rounds[1].Configs, res.Rounds[2].Configs)
	}
	out := res.Render()
	for _, want := range []string{"exhaustive", "halving", "epoch ratio", "val MSE", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
