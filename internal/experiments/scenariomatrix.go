package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sizeless/internal/core"
	"sizeless/internal/fleetsynth"
	"sizeless/internal/loadgen"
	"sizeless/internal/monitoring"
	"sizeless/internal/optimizer"
	"sizeless/internal/platform"
	"sizeless/internal/xrand"
)

// Scenario-lab geometry. The horizon is compressed — diurnal periods of
// minutes instead of hours, a 5-second keep-alive instead of AWS's ~10
// minutes — so the cold-start dynamics of hours of traffic fit in a test
// run while keeping the ratios (period ≫ window ≫ keep-alive ≫ mean gap)
// that make cold starts load-dependent.
const (
	// scenarioHorizon is the virtual-time extent of every scenario.
	scenarioHorizon = 10 * time.Minute
	// scenarioWindow is the monitoring-window length (20 windows/run).
	scenarioWindow = 30 * time.Second
	// scenarioKeepAlive is the accelerated warm-pool reclamation window.
	scenarioKeepAlive = 5 * time.Second
	// scenarioBaselineMin is how many invocations the drift walk
	// accumulates before preparing a baseline.
	scenarioBaselineMin = 100
	// scenarioShiftScale multiplies every synthetic metric after the
	// injected shift — ×3 is far past the detector's small-effect floor.
	scenarioShiftScale = 3.0
	// scenarioShiftWindow is the window index at which the spiky-shift
	// scenario's distribution shift lands (t = 6 min, inside a spike).
	scenarioShiftWindow = 12
	// scenarioQuorum is how many metrics must shift in one window before
	// the walk treats the window as drifted. The detector config itself
	// stays at defaults (α = 0.01, |δ| ≥ 0.147, 7 metrics); the quorum is
	// the walk's decision rule. With 7 metrics tested at α = 0.01, a
	// fire-on-any rule would false-positive on ~7% of stationary windows
	// by construction — a real shift moves every correlated resource
	// metric at once, so requiring ≥ 2 keeps single-metric rank-test
	// noise from triggering recomputation.
	scenarioQuorum = 2
)

// DetectionWindowBound is the documented detection-latency bound the
// scenario lab asserts: an injected distribution shift must be detected
// within this many windows of landing (1 = the shift window itself). The
// shift scales every tested metric by scenarioShiftScale, so the first
// full post-shift window already separates cleanly under the default
// Mann-Whitney/Cliff's-delta thresholds; the bound leaves one window of
// slack for baseline-boundary effects.
const DetectionWindowBound = 2

// scenarioTraceText is the embedded recorded-trace scenario: a bursty,
// idle-heavy rate trace (requests per second) with step changes, the
// traffic family where cost surprises concentrate.
const scenarioTraceText = `# bursty idle-heavy fleet trace (offset_seconds rate_rps)
0 4
60 25
120 2
180 0.5
240 40
270 6
360 90
375 8
480 0.2
540 30
`

// scenario is one row of the matrix: a workload shape plus the window
// index of an injected metric-distribution shift (-1 for none).
type scenario struct {
	name        string
	profile     loadgen.Profile
	shiftWindow int
}

// scenarioTable builds the scenario matrix: stationary control, pure
// diurnal modulation, spiky superposition, spiky with an injected shift,
// cold-start-heavy sparse traffic, and recorded-trace replay.
func scenarioTable() ([]scenario, error) {
	trace, err := loadgen.ParseTrace(strings.NewReader(scenarioTraceText))
	if err != nil {
		return nil, fmt.Errorf("experiments: parsing embedded scenario trace: %w", err)
	}
	spiky := loadgen.Superpose(
		loadgen.ConstantProfile{RPS: 8},
		loadgen.SpikeProfile{Start: 2 * time.Minute, Duration: 20 * time.Second, Magnitude: 120},
		loadgen.SpikeProfile{Start: 6 * time.Minute, Duration: 15 * time.Second, Magnitude: 200},
	)
	return []scenario{
		{name: "stationary", profile: loadgen.ConstantProfile{RPS: 20}, shiftWindow: -1},
		{name: "diurnal", profile: loadgen.DiurnalProfile{Base: 20, Amplitude: 16, Period: 5 * time.Minute}, shiftWindow: -1},
		{name: "spiky", profile: spiky, shiftWindow: -1},
		{name: "spiky-shift", profile: spiky, shiftWindow: scenarioShiftWindow},
		{name: "sparse", profile: loadgen.ScaleProfile(loadgen.ConstantProfile{RPS: 4}, 0.1), shiftWindow: -1},
		{name: "trace-replay", profile: trace, shiftWindow: -1},
	}, nil
}

// scenarioWindows samples a scenario's arrival schedule and streams it into
// per-window invocation batches, injecting the metric shift (if any) from
// the scenario's shift window onward. Identical seeds yield bit-identical
// windows.
func scenarioWindows(sc scenario, seed int64) ([][]monitoring.Invocation, loadgen.Schedule, error) {
	rng := xrand.New(seed).Derive("scenario/" + sc.name)
	sched, err := loadgen.Sample(sc.profile, scenarioHorizon, rng.Derive("arrivals"))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: sampling %s: %w", sc.name, err)
	}
	cfg := fleetsynth.StreamConfig{
		Horizon:   scenarioHorizon,
		Window:    scenarioWindow,
		KeepAlive: scenarioKeepAlive,
	}
	if sc.shiftWindow >= 0 {
		shift := sc.shiftWindow
		cfg.ScaleAt = func(w int) float64 {
			if w >= shift {
				return scenarioShiftScale
			}
			return 1
		}
	}
	windows, err := fleetsynth.Stream(rng.Derive("metrics"), sched, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: streaming %s: %w", sc.name, err)
	}
	return windows, sched, nil
}

// driftWalkResult is the drift detector's trajectory over one scenario.
type driftWalkResult struct {
	// Evaluated counts windows tested against a prepared baseline;
	// Skipped counts windows too small to test (< 20 samples).
	Evaluated, Skipped int
	// Fires lists window indices where >= scenarioQuorum metrics shifted.
	Fires []int
	// FalsePositives counts fires with no injected shift in effect.
	FalsePositives int
	// DetectedWindow is the first fire at or after the shift window
	// (-1 when not detected or no shift was injected). Latency is
	// DetectedWindow − shiftWindow + 1 (1 = detected in the shift window
	// itself; -1 when not applicable).
	DetectedWindow, Latency int
}

// driftWalk runs the default-config drift detector over a window sequence:
// accumulate scenarioBaselineMin invocations of baseline, then test each
// subsequent window, firing on a >= scenarioQuorum metric quorum and
// re-baselining from the firing window (the recommender's "recompute and
// adopt the new behaviour" move). shiftWindow is where an injected shift
// lands, or -1; fires before it (or any fire when none was injected) count
// as false positives.
func driftWalk(windows [][]monitoring.Invocation, shiftWindow int) (driftWalkResult, error) {
	res := driftWalkResult{DetectedWindow: -1, Latency: -1}
	var cfg monitoring.DriftDetectorConfig // defaults throughout

	var accum []monitoring.Invocation
	var baseline *monitoring.PreparedBaseline
	for w, invs := range windows {
		if baseline == nil {
			accum = append(accum, invs...)
			if len(accum) >= scenarioBaselineMin {
				baseline = monitoring.PrepareBaseline(accum, cfg)
				accum = nil
			}
			continue
		}
		if len(invs) < 20 {
			res.Skipped++
			continue
		}
		report, err := monitoring.DetectDriftAgainst(baseline, invs, cfg)
		if err != nil {
			return res, fmt.Errorf("experiments: drift walk window %d: %w", w, err)
		}
		res.Evaluated++
		if len(report.Shifted) < scenarioQuorum {
			continue
		}
		res.Fires = append(res.Fires, w)
		if shiftWindow < 0 || w < shiftWindow {
			res.FalsePositives++
		} else if res.DetectedWindow < 0 {
			res.DetectedWindow = w
			res.Latency = w - shiftWindow + 1
		}
		// Re-baseline on the new behaviour starting from this window.
		baseline = nil
		accum = append(accum, invs...)
		if len(accum) >= scenarioBaselineMin {
			baseline = monitoring.PrepareBaseline(accum, cfg)
			accum = nil
		}
	}
	return res, nil
}

// ScenarioOutcome is one scenario's row in the matrix.
type ScenarioOutcome struct {
	Name string
	// Arrivals is the realized arrival count; ExpectedArrivals is the
	// profile's integrated rate over the horizon.
	Arrivals         int
	ExpectedArrivals float64
	// MeanRate is the horizon-average arrival rate (RateOver).
	MeanRate float64
	// ColdStarts and ColdFrac come from the keep-alive warm-pool model:
	// load-dependent, not a fixed ratio.
	ColdStarts int
	ColdFrac   float64
	// Drift is the detector trajectory.
	Drift driftWalkResult
	// StaleRegret and DetectorRegret are mean per-window excess S_total
	// (the §3.5 objective) of the frozen-once and recompute-on-drift
	// policies versus recomputing every window; AlwaysRegret is 0 by
	// construction. CostWindows is how many windows were scored.
	StaleRegret, DetectorRegret float64
	CostWindows                 int
	// ColdOverhead maps provider name → cold-start billing overhead: the
	// fraction of the scenario's total bill (at the provider's ~256 MB
	// size) that pays for cold-start delay rather than execution.
	ColdOverhead map[string]float64
}

// ScenarioMatrixResult is the scenario-matrix experiment output.
type ScenarioMatrixResult struct {
	Horizon, Window, KeepAlive time.Duration
	// Base is the model's base memory size.
	Base platform.MemorySize
	// Providers lists the provider names in ColdOverhead column order.
	Providers []string
	Scenarios []ScenarioOutcome
}

// ScenarioMatrix runs the non-stationary scenario lab (benchreport id
// "scenario-matrix"): six traffic shapes — stationary, diurnal, spiky,
// spiky with an injected metric shift, cold-start-heavy sparse, and
// recorded-trace replay — each sampled as a non-homogeneous Poisson
// process, streamed through the keep-alive warm-pool model into
// monitoring windows, and scored on drift-detector behaviour (false
// positives, detection latency), recomputation-policy cost regret, and
// per-provider cold-start billing overhead. Everything derives from the
// lab seed, so identical seeds reproduce the table byte-for-byte.
func ScenarioMatrix(ctx context.Context, l *Lab) (*ScenarioMatrixResult, error) {
	base := platform.Nearest(platform.Mem256, l.Sizes())
	model, err := l.Model(ctx, base)
	if err != nil {
		return nil, err
	}
	table, err := scenarioTable()
	if err != nil {
		return nil, err
	}
	providers := []platform.Provider{
		platform.AWSLambda(), platform.GCPCloudFunctions(), platform.AzureFunctions(),
	}
	res := &ScenarioMatrixResult{
		Horizon: scenarioHorizon, Window: scenarioWindow, KeepAlive: scenarioKeepAlive,
		Base: base,
	}
	for _, p := range providers {
		res.Providers = append(res.Providers, p.Name())
	}

	for _, sc := range table {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: scenario matrix cancelled: %w", err)
		}
		windows, sched, err := scenarioWindows(sc, l.Scale.Seed)
		if err != nil {
			return nil, err
		}
		out := ScenarioOutcome{
			Name:             sc.name,
			Arrivals:         len(sched),
			ExpectedArrivals: sc.profile.Integral(0, scenarioHorizon),
			MeanRate:         sched.RateOver(scenarioHorizon),
		}
		var meanExecMs float64
		for _, invs := range windows {
			out.ColdStarts += fleetsynth.ColdStarts(invs)
			for _, inv := range invs {
				meanExecMs += inv.Metrics[monitoring.ExecutionTime]
			}
		}
		if out.Arrivals > 0 {
			out.ColdFrac = float64(out.ColdStarts) / float64(out.Arrivals)
			meanExecMs /= float64(out.Arrivals)
		}

		out.Drift, err = driftWalk(windows, sc.shiftWindow)
		if err != nil {
			return nil, err
		}
		if err := scoreCostRegret(model, l.Pricing(), windows, out.Drift.Fires, &out); err != nil {
			return nil, err
		}
		out.ColdOverhead = coldOverhead(providers, out.ColdStarts, out.Arrivals, meanExecMs)
		res.Scenarios = append(res.Scenarios, out)
	}
	return res, nil
}

// scoreCostRegret walks the windows once and scores three recomputation
// policies on the optimizer's own S_total objective: "stale" freezes the
// first recommendation, "detector" recomputes at drift fires, "always"
// recomputes every window (the reference, regret 0 by construction).
// Regret is the mean per-window S_total excess over the always policy.
func scoreCostRegret(model *core.Model, pricing platform.Pricer, windows [][]monitoring.Invocation, fires []int, out *ScenarioOutcome) error {
	fired := make(map[int]bool, len(fires))
	for _, w := range fires {
		fired[w] = true
	}
	var staleSize, detSize platform.MemorySize
	haveRec := false
	var staleSum, detSum float64
	for w, invs := range windows {
		if len(invs) < 20 {
			continue
		}
		sum, err := monitoring.Summarize(invs)
		if err != nil {
			return fmt.Errorf("experiments: summarizing scenario window %d: %w", w, err)
		}
		times, err := model.Predict(sum)
		if err != nil {
			return fmt.Errorf("experiments: predicting scenario window %d: %w", w, err)
		}
		rec, err := optimizer.Optimize(times, pricing, 0.75)
		if err != nil {
			return fmt.Errorf("experiments: optimizing scenario window %d: %w", w, err)
		}
		if !haveRec {
			staleSize, detSize = rec.Best, rec.Best
			haveRec = true
			continue
		}
		if fired[w] {
			detSize = rec.Best
		}
		best := sTotalOf(rec, rec.Best)
		staleSum += sTotalOf(rec, staleSize) - best
		detSum += sTotalOf(rec, detSize) - best
		out.CostWindows++
	}
	if out.CostWindows > 0 {
		out.StaleRegret = staleSum / float64(out.CostWindows)
		out.DetectorRegret = detSum / float64(out.CostWindows)
	}
	return nil
}

// sTotalOf looks up the S_total score of a memory size in a
// recommendation. The optimizer scores the full grid, so the size is
// always present; a miss returns +1 (one full objective unit of regret)
// rather than panicking.
func sTotalOf(rec optimizer.Recommendation, m platform.MemorySize) float64 {
	for _, o := range rec.Options {
		if o.Memory == m {
			return o.STotal
		}
	}
	return sTotalOf(rec, rec.Best) + 1
}

// coldOverhead computes, per provider, the fraction of the scenario's
// total bill at the provider's ~256 MB size that pays for cold-start
// delay: colds·cost(coldDelay) / (colds·cost(coldDelay) + n·cost(exec)).
func coldOverhead(providers []platform.Provider, colds, n int, meanExecMs float64) map[string]float64 {
	out := make(map[string]float64, len(providers))
	for _, p := range providers {
		cfg := p.Platform()
		m := platform.Nearest(platform.Mem256, p.DefaultSizes())
		coldCost := float64(colds) * cfg.Pricing.Cost(m, cfg.ColdStartDelay(m))
		execCost := float64(n) * cfg.Pricing.Cost(m, time.Duration(meanExecMs*float64(time.Millisecond)))
		if coldCost+execCost > 0 {
			out[p.Name()] = coldCost / (coldCost + execCost)
		} else {
			out[p.Name()] = 0
		}
	}
	return out
}

// Render prints the scenario matrix. The output contains no wall-clock
// values, so identical seeds render byte-identical tables.
func (r *ScenarioMatrixResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Temporal workload scenario matrix — %v horizon, %v windows, %v keep-alive, base %v\n\n",
		r.Horizon, r.Window, r.KeepAlive, r.Base)

	t := newTable("scenario", "arrivals", "expected", "rate", "cold", "cold frac")
	for _, s := range r.Scenarios {
		t.addRow(s.Name,
			fmt.Sprintf("%d", s.Arrivals),
			fmt.Sprintf("%.0f", s.ExpectedArrivals),
			fmt.Sprintf("%.2f/s", s.MeanRate),
			fmt.Sprintf("%d", s.ColdStarts),
			pct(s.ColdFrac))
	}
	b.WriteString(t.String())

	b.WriteString("\nDrift detector (default config, quorum ")
	fmt.Fprintf(&b, "%d) and recomputation-policy regret:\n", scenarioQuorum)
	d := newTable("scenario", "eval", "skip", "FP", "detected", "latency", "stale regret", "detector regret")
	for _, s := range r.Scenarios {
		detected, latency := "-", "-"
		if s.Drift.DetectedWindow >= 0 {
			detected = fmt.Sprintf("w%d", s.Drift.DetectedWindow)
			latency = fmt.Sprintf("%d", s.Drift.Latency)
		}
		d.addRow(s.Name,
			fmt.Sprintf("%d", s.Drift.Evaluated),
			fmt.Sprintf("%d", s.Drift.Skipped),
			fmt.Sprintf("%d", s.Drift.FalsePositives),
			detected, latency,
			fmt.Sprintf("%.4f", s.StaleRegret),
			fmt.Sprintf("%.4f", s.DetectorRegret))
	}
	b.WriteString(d.String())

	b.WriteString("\nCold-start billing overhead at ~256 MB (fraction of total bill):\n")
	c := newTable(append([]string{"scenario"}, r.Providers...)...)
	for _, s := range r.Scenarios {
		row := []string{s.Name}
		for _, p := range r.Providers {
			row = append(row, pct(s.ColdOverhead[p]))
		}
		c.addRow(row...)
	}
	b.WriteString(c.String())
	return b.String()
}
