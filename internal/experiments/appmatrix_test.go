package experiments

import (
	"context"
	"testing"

	"sizeless/internal/platform"
)

func TestAppMatrixFusionDominatesPerFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("app matrix measures 27 functions across the grid")
	}
	ctx := context.Background()
	lab := NewLab(SmallScale())
	res, err := AppMatrix(ctx, lab, platform.AWSLambda())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("have %d cells, want 4 apps × 1 provider", len(res.Cells))
	}

	// Acceptance criterion: the sizes+fusion plan reaches end-to-end cost
	// ≤ the per-function-optimal plan at equal-or-better critical-path
	// latency on at least 3 of the 4 apps. Compare's no-regression rule
	// makes this hold on all four by construction; the ≥3 floor is the
	// documented contract.
	const eps = 1e-12
	dominated := 0
	for _, cell := range res.Cells {
		pf, fu := cell.Plans.PerFunction, cell.Plans.Fused
		if fu.CostPerReq <= pf.CostPerReq+eps && fu.LatencyMs <= pf.LatencyMs+eps {
			dominated++
		} else {
			t.Logf("%s: fused cost %v lat %v vs per-fn cost %v lat %v (not dominated)",
				cell.App, fu.CostPerReq, fu.LatencyMs, pf.CostPerReq, pf.LatencyMs)
		}
		// The search spaces nest, so the joint objective can never be
		// worse under the shared normalization.
		if fu.STotal > cell.Plans.SizesOnly.STotal+eps {
			t.Errorf("%s: fused S_total %v worse than sizes-only %v",
				cell.App, fu.STotal, cell.Plans.SizesOnly.STotal)
		}
		if fu.InvocationsPerReq > pf.InvocationsPerReq+eps {
			t.Errorf("%s: fusion increased invocations per request", cell.App)
		}
	}
	if dominated < 3 {
		t.Errorf("fused plan dominates per-function on %d of 4 apps, want ≥ 3", dominated)
	}

	// Apps whose chains scale with memory must actually fuse something.
	// facial-recognition is deliberately absent: its chain is
	// service-call-dominated, so fusing at small memory regresses latency
	// (the GC composition penalty exceeds the saved trigger hops) and
	// fusing at larger memory regresses cost — declining to fuse is the
	// joint optimizer's correct answer there, and event-processing has no
	// fusable chain at all.
	for _, app := range []string{"airline-booking", "hello-retail"} {
		cell := res.Cell(app, "aws-lambda")
		if cell == nil {
			t.Fatalf("missing cell for %s", app)
		}
		if cell.Plans.Fused.FusedUnits() == 0 {
			t.Errorf("%s: planner fused nothing", app)
		}
	}
}

func TestAppMatrixDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("app matrix measures 27 functions across the grid")
	}
	ctx := context.Background()
	run := func() string {
		res, err := AppMatrix(ctx, NewLab(SmallScale()), platform.AWSLambda())
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("app matrix render differs between identical runs:\n%s\n---\n%s", a, b)
	}
	if a == "" {
		t.Error("empty render")
	}
}
