package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WithStack walks every file, calling fn with each node and the stack of
// enclosing nodes (outermost first, not including n). Returning false
// prunes the subtree. It is the parent-aware traversal the upstream
// inspector package provides; the analyzers here need nothing fancier.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if !descend {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// CalleeFunc resolves the called function or method object of call, or nil
// for calls through function-typed values, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CalleeIs reports whether call invokes the function or method with the
// given types.Func full name, e.g. "(*sync.Mutex).Lock" or
// "context.Background".
func CalleeIs(info *types.Info, call *ast.CallExpr, fullName string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.FullName() == fullName
}

// PathHasSegment reports whether the slash-separated import path contains
// seg as a contiguous run of segments — "a/internal/pool" has segment
// "internal/pool", but "a/internal/poolside" does not. Analyzers scope
// themselves by segment so the same predicates hold for the real module
// ("sizeless/internal/nn") and analysistest fixtures ("x/internal/nn").
func PathHasSegment(path, seg string) bool {
	if path == seg {
		return true
	}
	if strings.HasPrefix(path, seg+"/") || strings.HasSuffix(path, "/"+seg) {
		return true
	}
	return strings.Contains(path, "/"+seg+"/")
}

// IsLibraryPackage reports whether the import path names library code the
// concurrency/context invariants govern: anything under an internal/ tree
// plus the module root, excluding main packages (cmd, examples) — those own
// their process and may fan out or manufacture contexts freely.
func IsLibraryPackage(pkg *types.Package) bool {
	if pkg.Name() == "main" {
		return false
	}
	return PathHasSegment(pkg.Path(), "internal") || !strings.Contains(pkg.Path(), "/")
}

// RootIdent returns the leftmost identifier of a selector/index chain:
// RootIdent(a.b[i].c) == a. Nil when the expression is rooted elsewhere
// (call results, literals, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
