// Package analysis is the repository's static-analysis framework: a
// self-contained reimplementation of the narrow slice of
// golang.org/x/tools/go/analysis that the sizelessvet suite needs
// (Analyzer, Pass, diagnostics, suppression), built only on the standard
// library's go/ast, go/types, and go/token.
//
// The real x/tools module is deliberately not a dependency: this module is
// dependency-free and must stay buildable offline, so the framework mirrors
// the x/tools API shape closely enough that the analyzers would port to the
// upstream driver by changing one import, while the loader (load.go) does
// the package loading x/tools' go/packages would normally do.
//
// # Invariants enforced by the suite
//
// Each analyzer under internal/analysis/<name> machine-checks one invariant
// the engine's results depend on:
//
//   - poolescape: values drawn from a sync.Pool (or a Borrow-style pooled
//     helper) must stay function-local — never returned, stored in fields
//     or globals, or captured by goroutines.
//   - boundedgo: library packages fan out through internal/pool.Run only;
//     naked go statements are reserved for internal/pool itself, main
//     packages, and tests.
//   - determinism: no seedless global math/rand draws, no time.Now-derived
//     seeds, and no map-iteration order feeding float accumulators or
//     slices in the numeric packages — seed-reproducibility is what makes
//     the §5 parity oracles bit-exact.
//   - ctxflow: library code must not manufacture context.Background or
//     context.TODO (nil-ctx defaulting guards excepted) and must not drop
//     an in-scope ctx by passing a manufactured or nil context down.
//   - shardlock: recommender methods must not call other locking Service
//     methods or invoke user callbacks while holding a shard mutex.
//
// # Suppressing a finding
//
// A deliberate exception is silenced with a staticcheck-style comment on
// the flagged line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason why this is safe>
//
// The reason is mandatory; a bare //lint:ignore is itself reported. Several
// names may be given comma-separated. Suppressions are honoured by both the
// analysistest harness and cmd/sizelessvet, so every exception is grepable
// and carries its justification next to the code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite would port to the
// upstream driver mechanically.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore comments.
	Name string
	// Doc is the one-paragraph invariant statement shown by -list.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding inside a package, positioned by token.Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position translated through the file
// set and attributed to its analyzer — the unit cmd/sizelessvet prints and
// analysistest matches against // want comments.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package, resolves positions, drops
// findings silenced by a well-formed lint:ignore comment, and reports
// malformed suppressions. Findings come back sorted by file, line, column,
// then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		out = append(out, malformed...)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				posn := pkg.Fset.Position(d.Pos)
				if sup.covers(a.Name, posn) {
					continue
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignorePrefix is the suppression marker, staticcheck-compatible so editors
// already highlight it.
const ignorePrefix = "lint:ignore"

// suppressionIndex records, per file and line, which analyzers a
// lint:ignore comment silences. A comment covers its own line and the line
// below it (comment-above-the-statement, the common form).
type suppressionIndex map[string]map[int]map[string]bool

func (s suppressionIndex) covers(analyzer string, posn token.Position) bool {
	lines := s[posn.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		if names := lines[line]; names[analyzer] || names["all"] {
			return true
		}
	}
	return false
}

// suppressions indexes every lint:ignore comment in the package and
// reports malformed ones (no analyzer name, or no reason) as findings under
// the pseudo-analyzer name "lint".
func suppressions(pkg *Package) (suppressionIndex, []Finding) {
	idx := make(suppressionIndex)
	var malformed []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					malformed = append(malformed, Finding{
						Analyzer: "lint",
						Pos:      posn,
						Message:  "malformed lint:ignore: want \"//lint:ignore <analyzer>[,<analyzer>] <reason>\" — the reason is mandatory",
					})
					continue
				}
				fileLines := idx[posn.Filename]
				if fileLines == nil {
					fileLines = make(map[int]map[string]bool)
					idx[posn.Filename] = fileLines
				}
				lineNames := fileLines[posn.Line]
				if lineNames == nil {
					lineNames = make(map[string]bool)
					fileLines[posn.Line] = lineNames
				}
				for _, n := range strings.Split(names, ",") {
					lineNames[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return idx, malformed
}
