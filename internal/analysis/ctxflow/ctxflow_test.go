package ctxflow_test

import (
	"testing"

	"sizeless/internal/analysis/analysistest"
	"sizeless/internal/analysis/ctxflow"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "b/internal/lib")
}
