package ctxflow_test

import (
	"testing"

	"sizeless/internal/analysis/analysistest"
	"sizeless/internal/analysis/ctxflow"
)

func TestAnalyzer(t *testing.T) {
	// b/internal/lib: the core violation/exception matrix.
	// b/internal/serve: daemon shutdown contexts — manufactured roots are
	// flagged, the WithoutCancel(ctx) grace idiom is silent.
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer,
		"b/internal/lib", "b/internal/serve")
}
