// Package ctxflow enforces context discipline in library code: a ctx that
// enters a function must flow to its callees, and library packages must
// not manufacture fresh root contexts — context.Background()/TODO() belong
// to main packages, tests, and the one sanctioned idiom, the nil-ctx
// compatibility guard:
//
//	if ctx == nil {
//	    ctx = context.Background()
//	}
//
// A manufactured or nil context passed down while a real ctx is in scope
// silently detaches the callee from cancellation — exactly the bug that
// turns a cancelled fleet recompute into a runaway background train.
package ctxflow

import (
	"go/ast"
	"go/types"

	"sizeless/internal/analysis"
)

// Analyzer flags manufactured root contexts and dropped ctx parameters in
// library packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "library code must not manufacture context.Background/TODO (nil-ctx guards " +
		"excepted) and must pass an in-scope ctx to every callee that accepts one",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsLibraryPackage(pass.Pkg) {
		return nil, nil
	}
	info := pass.TypesInfo
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := rootContextCall(info, call); ok {
			if isNilGuard(info, call, stack) {
				return true
			}
			if ctxParam(info, stack) != nil {
				pass.Reportf(call.Pos(), "context.%s manufactured while ctx is in scope; pass the caller's ctx so cancellation propagates", name)
			} else {
				pass.Reportf(call.Pos(), "library code must not manufacture context.%s; accept a ctx parameter and thread it from the caller", name)
			}
			return true
		}
		checkNilCtxArg(pass, call, stack)
		return true
	})
	return nil, nil
}

// rootContextCall recognizes context.Background() / context.TODO().
func rootContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	for _, name := range [2]string{"Background", "TODO"} {
		if analysis.CalleeIs(info, call, "context."+name) {
			return name, true
		}
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxParam returns the nearest enclosing function's context.Context
// parameter object, if it has one.
func ctxParam(info *types.Info, stack []ast.Node) *types.Var {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			// A literal inherits its enclosing function's ctx visibility;
			// keep climbing unless the literal declares its own.
			ft = f.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			t := info.TypeOf(field.Type)
			if t == nil || !isContextType(t) {
				continue
			}
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					return v
				}
			}
		}
		if _, isDecl := stack[i].(*ast.FuncDecl); isDecl {
			return nil
		}
	}
	return nil
}

// isNilGuard recognizes the compatibility idiom: the call is the RHS of
// `x = context.Background()` directly inside `if x == nil { ... }`.
func isNilGuard(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != call {
		return false
	}
	lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	target := info.ObjectOf(lhs)
	if target == nil {
		return false
	}
	for i := len(stack) - 2; i >= 0 && i >= len(stack)-4; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		var operand *ast.Ident
		for _, e := range [2]ast.Expr{cond.X, cond.Y} {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "nil" {
				operand = id
			}
		}
		return operand != nil && info.ObjectOf(operand) == target
	}
	return false
}

// checkNilCtxArg flags a literal nil passed in a context.Context parameter
// slot while the enclosing function has a ctx of its own.
func checkNilCtxArg(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	t := info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if !isContextType(params.At(i).Type()) {
			continue
		}
		if ctxParam(info, stack) != nil {
			pass.Reportf(arg.Pos(), "nil passed as context.Context while ctx is in scope; pass ctx so cancellation propagates")
		}
	}
}
