// Package lib exercises the ctxflow invariant: library code must not
// manufacture root contexts and must keep an in-scope ctx flowing.
package lib

import "context"

// Detached manufactures a root context with no ctx in scope at all.
func Detached() error {
	ctx := context.Background() // want `library code must not manufacture context\.Background`
	return work(ctx)
}

// Dropped has a perfectly good ctx and detaches its callee anyway.
func Dropped(ctx context.Context) error {
	return work(context.TODO()) // want `context\.TODO manufactured while ctx is in scope`
}

// NilArg severs cancellation by passing a literal nil downward.
func NilArg(ctx context.Context) error {
	return work(nil) // want `nil passed as context\.Context while ctx is in scope`
}

// Guarded is the sanctioned nil-ctx compatibility idiom: defaulting a nil
// ctx is the one legal Background() in library code.
func Guarded(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// Threaded is the normal, silent case: ctx flows to the callee.
func Threaded(ctx context.Context) error {
	return work(ctx)
}

// Suppressed is a documented exception.
func Suppressed() error {
	//lint:ignore ctxflow fixture: deliberately detached fire-and-forget job per its contract
	return work(context.Background())
}

func work(ctx context.Context) error {
	_ = ctx
	return nil
}
