// Package serve mirrors the repository's fleet-daemon package: library
// code whose shutdown paths need detached-but-bounded contexts. The legal
// shape is context.WithoutCancel(ctx) — still derived from the caller's
// ctx — never a manufactured root.
package serve

import (
	"context"
	"time"
)

// ShutdownDetached manufactures a root context for the grace period — the
// daemon bug ctxflow exists to catch.
func ShutdownDetached(stop func(context.Context) error) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `library code must not manufacture context\.Background`
	defer cancel()
	return stop(ctx)
}

// ShutdownGrace is the sanctioned daemon idiom: the grace context survives
// the parent's cancellation (that cancellation is exactly what started the
// shutdown) but is still derived from ctx, so values flow and the analyzer
// stays silent.
func ShutdownGrace(ctx context.Context, stop func(context.Context) error) error {
	gctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), time.Second)
	defer cancel()
	return stop(gctx)
}
