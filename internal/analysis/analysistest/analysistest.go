// Package analysistest runs an analyzer over golden-file fixture packages
// and checks its findings against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: a comment
//
//	code() // want `regexp` `another`
//
// declares that the analyzer must report diagnostics on that line matching
// the backquoted regular expressions, in order; every reported diagnostic
// must be matched by a want, and every want must be matched by a
// diagnostic. Fixture packages live in GOPATH layout under
// <analyzer>/testdata/src/<importpath>/ so `go build ./...` and
// `go vet ./...` ignore them.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sizeless/internal/analysis"
)

// moduleDir locates the repository root (the directory holding go.mod) so
// fixtures can resolve standard-library and module imports through the
// loader regardless of which package's test binary is running.
func moduleDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// TestData returns the testdata directory of the calling test's package.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package from dir (a testdata root containing
// src/), applies the analyzer, and diffs findings against the fixtures'
// want comments. Suppressions (//lint:ignore) are honoured exactly as in
// cmd/sizelessvet, so fixtures assert both that violations are reported
// and that justified exceptions stay silent.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	mod := moduleDir(t)
	for _, path := range paths {
		pkg, err := analysis.LoadTestdata(mod, dir, path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, findings)
	}
}

// want is one expected-diagnostic pattern.
type want struct {
	posn token.Position
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// check matches findings against the package's want comments.
func check(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	// Collect wants per file:line by rescanning each fixture's raw comments;
	// scanner (not the AST) keeps this robust to comment placement.
	wants := make(map[string][]*want) // "file:line" -> patterns in order
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		var sc scanner.Scanner
		file := token.NewFileSet().AddFile(name, -1, len(src))
		sc.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := sc.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			text := strings.TrimSpace(strings.TrimPrefix(lit, "//"))
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			posn := file.Position(pos)
			key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
			for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], &want{posn: posn, re: re})
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: no diagnostic matched want `%s`", key, w.re)
			}
		}
	}
}
