// Package shardlock enforces the recommender's lock discipline: while a
// shard mutex is held, a Service method must do its own work and get out —
// it must not call other locking methods of the same package (self-
// deadlock with sync.Mutex, lock-order inversion across shards) and must
// not invoke user callbacks (arbitrary code, arbitrary latency, possible
// reentrancy) until the lock is released. The sanctioned pattern is the
// *Locked helper: a method that documents "caller holds the shard lock"
// and takes no locks of its own.
package shardlock

import (
	"go/ast"
	"go/types"

	"sizeless/internal/analysis"
)

// Analyzer flags locking-method calls and callback invocations made while
// a mutex is held inside internal/recommender.
var Analyzer = &analysis.Analyzer{
	Name: "shardlock",
	Doc: "inside internal/recommender, methods must not call other locking Service " +
		"methods or invoke user callbacks while holding a shard mutex",
	Run: run,
}

var mutexMethods = map[string]string{
	"(*sync.Mutex).Lock":      "lock",
	"(*sync.Mutex).Unlock":    "unlock",
	"(*sync.RWMutex).Lock":    "lock",
	"(*sync.RWMutex).RLock":   "lock",
	"(*sync.RWMutex).Unlock":  "unlock",
	"(*sync.RWMutex).RUnlock": "unlock",
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathHasSegment(pass.Path(), "internal/recommender") {
		return nil, nil
	}
	info := pass.TypesInfo

	// Pre-pass: which methods in this package take a mutex themselves?
	// Calling one of those while already holding a shard lock is the
	// hazard; calling a *Locked helper (lock-free by contract) is the
	// sanctioned pattern and stays silent.
	locking := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			takesLock := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := analysis.CalleeFunc(info, call); fn != nil && mutexMethods[fn.FullName()] == "lock" {
						takesLock = true
					}
				}
				return true
			})
			if takesLock {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					locking[fn] = true
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &walker{pass: pass, info: info, locking: locking}
				w.stmts(fd.Body.List, nil)
			}
		}
	}
	return nil, nil
}

// walker tracks, lexically, which mutexes are held at each statement. It
// is an under-approximation by design (a vet heuristic, not a proof):
// locks taken inside nested control flow are tracked within that branch
// only, and a deferred Unlock leaves the mutex held to the end of the
// function — which is exactly the Lock/defer-Unlock idiom.
type walker struct {
	pass    *analysis.Pass
	info    *types.Info
	locking map[*types.Func]bool
}

// mutexOp recognizes a statement-level mutex operation and returns the
// lock's receiver expression (e.g. "sh.mu") and whether it locks.
func (w *walker) mutexOp(call *ast.CallExpr) (key string, op string, ok bool) {
	fn := analysis.CalleeFunc(w.info, call)
	if fn == nil {
		return "", "", false
	}
	op, isMutex := mutexMethods[fn.FullName()]
	if !isMutex {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), op, true
}

// stmts processes a statement list with the held set inherited from the
// enclosing block.
func (w *walker) stmts(list []ast.Stmt, held []string) {
	held = append([]string(nil), held...)
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op, ok := w.mutexOp(call); ok {
					switch op {
					case "lock":
						held = append(held, key)
					case "unlock":
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == key {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock(): the mutex stays held for the remainder of
			// the function — precisely the case the invariant polices.
			if _, _, ok := w.mutexOp(s.Call); ok {
				continue
			}
		}
		if len(held) > 0 {
			w.scan(stmt, held)
			continue
		}
		// Not holding anything here: recurse into nested blocks so locks
		// taken inside them are tracked with their own scope.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			w.stmts(s.List, held)
		case *ast.IfStmt:
			w.stmts(s.Body.List, held)
			if s.Else != nil {
				w.stmts([]ast.Stmt{s.Else}, held)
			}
		case *ast.ForStmt:
			w.stmts(s.Body.List, held)
		case *ast.RangeStmt:
			w.stmts(s.Body.List, held)
		case *ast.SwitchStmt:
			w.stmts(s.Body.List, held)
		case *ast.TypeSwitchStmt:
			w.stmts(s.Body.List, held)
		case *ast.SelectStmt:
			w.stmts(s.Body.List, held)
		case *ast.CaseClause:
			w.stmts(s.Body, held)
		case *ast.CommClause:
			w.stmts(s.Body, held)
		case *ast.LabeledStmt:
			w.stmts([]ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// The spawned goroutine does not inherit the (empty) held set.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				w.stmts(lit.Body.List, nil)
			}
		}
	}
}

// scan walks one statement executed under a held mutex and flags hazardous
// calls anywhere in its subtree.
func (w *walker) scan(stmt ast.Stmt, held []string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, isMutex := w.mutexOp(call); isMutex {
			return true
		}
		if fn := analysis.CalleeFunc(w.info, call); fn != nil {
			if w.locking[fn] {
				w.pass.Reportf(call.Pos(), "%s takes a lock and is called while %s is held; copy the needed state out and call it after unlock (*Locked helpers are the sanctioned pattern)", fn.Name(), held[len(held)-1])
			}
			return true
		}
		// No function object: a call through a function-typed value. If
		// that value is a variable (field, parameter, local), it is a user
		// callback — arbitrary code under our lock.
		if isCallbackValue(w.info, call.Fun) {
			w.pass.Reportf(call.Pos(), "user callback invoked while %s is held; capture the value and invoke it after unlock", held[len(held)-1])
		}
		return true
	})
}

// isCallbackValue reports whether e denotes a function-typed variable.
func isCallbackValue(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return false
		}
		_, isSig := v.Type().Underlying().(*types.Signature)
		return isSig
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			_, isSig := sel.Type().Underlying().(*types.Signature)
			return isSig
		}
	}
	return false
}
