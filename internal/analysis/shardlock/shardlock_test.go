package shardlock_test

import (
	"testing"

	"sizeless/internal/analysis/analysistest"
	"sizeless/internal/analysis/shardlock"
)

func TestAnalyzer(t *testing.T) {
	// e/internal/recommender: violations plus sanctioned patterns and a
	// suppressed exception. e/internal/other: out of scope, asserted silent.
	analysistest.Run(t, analysistest.TestData(t), shardlock.Analyzer,
		"e/internal/recommender", "e/internal/other")
}
