// Package recommender is a single-shard stand-in for the real sharded
// recommender: the lock-discipline rules apply in full here.
package recommender

import "sync"

// Service mimics the real shape: a mutex, guarded state, a user callback.
type Service struct {
	mu       sync.Mutex
	state    map[string]int
	onChange func(int)
}

// Snapshot takes the shard lock itself, so calling it under the lock is a
// self-deadlock with sync.Mutex.
func (s *Service) Snapshot() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.state))
	for k, v := range s.state {
		out[k] = v
	}
	return out
}

// Recompute calls a locking method while already holding the lock.
func (s *Service) Recompute() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.Snapshot() // want `Snapshot takes a lock and is called while s\.mu is held`
}

// Notify fires a user callback inside the critical section.
func (s *Service) Notify(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange(n) // want `user callback invoked while s\.mu is held`
}

// sizeLocked documents "caller holds the lock" and takes no locks itself.
func (s *Service) sizeLocked() int { return len(s.state) }

// Size is the sanctioned pattern: lock, call the *Locked helper, unlock.
func (s *Service) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizeLocked()
}

// NotifyAfter is the sanctioned callback shape: copy the needed state out,
// release the lock, then invoke the callback.
func (s *Service) NotifyAfter(n int) {
	s.mu.Lock()
	total := s.sizeLocked()
	s.mu.Unlock()
	s.onChange(total + n)
}

// Flush is a documented exception.
func (s *Service) Flush(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore shardlock fixture: fn is documented lock-free and must observe the frozen state
	fn()
}
