// Package other sits outside internal/recommender: the shard-lock
// discipline is recommender-local, so the analyzer skips this package and
// even a pattern it would flag there stays silent here.
package other

import "sync"

// Box guards a counter with its own mutex.
type Box struct {
	mu sync.Mutex
	n  int
}

// Get locks the box.
func (b *Box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Peek reads under the lock through a helper call — would be flagged
// inside internal/recommender, silent here.
func (b *Box) Peek(report func(int)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	report(b.n)
}
