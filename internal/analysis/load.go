package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates the full set of type-information maps the analyzers
// consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportSet resolves import paths to compiled export-data files and wraps
// the standard gc importer over them. go/importer's gc mode with a lookup
// function never touches GOPATH, so dependencies resolve identically in
// the standalone driver, the unitchecker (where go vet supplies the file
// map), and the analysistest harness.
type exportSet struct {
	files map[string]string // import path -> export data file
	imp   types.ImporterFrom
}

func newExportSet(fset *token.FileSet, files map[string]string) *exportSet {
	es := &exportSet{files: files}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := es.files[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	es.imp = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return es
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` for the patterns in dir and
// decodes the JSON stream. -export compiles nothing new beyond what a
// build would and populates each package's export-data path from the build
// cache, which is what lets the type checker resolve every import without
// source-typechecking the standard library.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=Dir,ImportPath,Name,Standard,Export,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists, parses, and type-checks the packages matching patterns,
// rooted at dir (the module directory). Only non-test Go files are
// analyzed: the suite's invariants govern library runtime behaviour, and
// tests legitimately spawn goroutines, manufacture contexts, and reorder
// work.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	es := newExportSet(fset, exports)
	var out []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := typecheck(fset, t.ImportPath, files, es.imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFiles parses and type-checks one package from an explicit file list
// with an explicit import-path→export-file map — the unitchecker entry
// point, where go vet hands both over in the .cfg file.
func LoadFiles(importPath string, files []string, exportFiles map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	es := newExportSet(fset, exportFiles)
	return typecheck(fset, importPath, files, es.imp)
}

func typecheck(fset *token.FileSet, importPath string, filenames []string, imp types.ImporterFrom) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadTestdata loads one GOPATH-style package from an analysistest tree:
// gopath/src/<path>/*.go. Imports resolve first against sibling testdata
// packages (type-checked recursively from source), then against the real
// module and standard library via export data, so fixture packages can
// exercise analyzers against both fake and real dependencies.
func LoadTestdata(moduleDir, gopath, path string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &testdataLoader{
		moduleDir: moduleDir,
		gopath:    gopath,
		fset:      fset,
		cache:     make(map[string]*Package),
		exports:   make(map[string]string),
	}
	return ld.load(path)
}

type testdataLoader struct {
	moduleDir string
	gopath    string
	fset      *token.FileSet
	cache     map[string]*Package
	exports   map[string]string
	es        *exportSet
}

func (l *testdataLoader) dirFor(path string) (string, bool) {
	dir := filepath.Join(l.gopath, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}

func (l *testdataLoader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: no testdata package %q under %s", path, l.gopath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: testdata package %q has no Go files", path)
	}
	info := newInfo()
	conf := types.Config{
		Importer: (*testdataImporter)(l),
		Sizes:    types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking testdata %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// testdataImporter resolves testdata-sibling imports from source and
// everything else through export data fetched lazily with go list.
type testdataImporter testdataLoader

func (l *testdataImporter) Import(path string) (*types.Package, error) {
	ld := (*testdataLoader)(l)
	if _, ok := ld.dirFor(path); ok {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if _, ok := ld.exports[path]; !ok {
		listed, err := goList(ld.moduleDir, path)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				ld.exports[p.ImportPath] = p.Export
			}
		}
		if _, ok := ld.exports[path]; !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	if ld.es == nil {
		ld.es = newExportSet(ld.fset, ld.exports)
	}
	return ld.es.imp.Import(path)
}
