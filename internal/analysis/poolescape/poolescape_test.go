package poolescape_test

import (
	"testing"

	"sizeless/internal/analysis/analysistest"
	"sizeless/internal/analysis/poolescape"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolescape.Analyzer, "d/scratch")
}
