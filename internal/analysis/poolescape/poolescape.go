// Package poolescape enforces the pooling invariant behind the engine's
// zero-steady-state-allocation hot paths: a value drawn from a sync.Pool
// (directly via Get, or through a Borrow-style helper that hands out
// pooled storage with a paired release) must stay local to the function
// that drew it. Returning it, parking it in a struct field or global, or
// capturing it in a goroutine lets it outlive the Put — after which the
// pool hands the same backing array to another caller and two computations
// silently share scratch memory.
package poolescape

import (
	"go/ast"
	"go/types"

	"sizeless/internal/analysis"
)

// Analyzer flags pooled values that escape the drawing function.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "values drawn from a sync.Pool or a Borrow-style pooled helper must not be " +
		"returned, stored in fields or globals, or captured by goroutines — they must " +
		"not outlive their Put",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil, nil
}

// pooledSource reports whether rhs draws pooled storage: (*sync.Pool).Get
// (possibly through a type assertion) or a call to a method or function
// named Borrow — the repository convention for "pooled storage plus
// release func".
func pooledSource(info *types.Info, rhs ast.Expr) (string, bool) {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.FullName() == "(*sync.Pool).Get" {
		return "sync.Pool.Get", true
	}
	if fn.Name() == "Borrow" {
		return fn.Name(), true
	}
	return "", false
}

// checkFunc tracks pooled variables inside one function body (closures
// included: a pooled value drawn in the function and misused inside a
// nested literal is still an escape of this function's draw).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect pooled variables and where they were drawn.
	pooled := make(map[types.Object]string) // var -> source description
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			src, ok := pooledSource(info, rhs)
			if !ok {
				continue
			}
			// Borrow-style helpers return (storage, release); only the
			// storage result is pooled. With one RHS per LHS the position
			// maps directly; multi-value calls pool the first result.
			if i < len(asg.Lhs) {
				if id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil {
						pooled[obj] = src
					}
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}

	uses := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
			return true
		})
		return found
	}

	// rootObj resolves the object a value expression aliases: `x`, `x.f`,
	// `x[i]`, `*x` all share x's pooled backing storage. A pooled value
	// that is merely an argument to a call does not alias the call's
	// result, so expression-rooted matching (not "mentions anywhere") is
	// what keeps `return n.train(ctx, ..., ts)` legal.
	rootObj := func(e ast.Expr) types.Object {
		if id := analysis.RootIdent(e); id != nil {
			return info.ObjectOf(id)
		}
		return nil
	}

	// Pass 2: flag escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Ownership transfer: returning pooled storage TOGETHER with a
			// func-typed release that references it (the Borrow convention,
			// e.g. `return buf.rows, func() { pool.Put(buf) }`) is the
			// sanctioned provider pattern — the signature itself carries
			// the "must release" contract.
			for _, res := range n.Results {
				if t := info.TypeOf(res); t != nil {
					if _, isFunc := t.Underlying().(*types.Signature); isFunc {
						for obj := range pooled {
							if uses(res, obj) {
								return true
							}
						}
					}
				}
			}
			for _, res := range n.Results {
				obj := rootObj(res)
				if src, ok := pooled[obj]; ok {
					pass.Reportf(res.Pos(), "pooled %s (from %s) returned; the caller would hold it past its Put — copy it or redesign around a caller-owned buffer", obj.Name(), src)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				obj := rootObj(rhs)
				src, ok := pooled[obj]
				if !ok {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// Mutating the pooled value's own fields (buf.flat =
					// buf.flat[:n]) is how pooled arenas resize; only a
					// store into some OTHER object's field escapes.
					if rootObj(target) == obj {
						continue
					}
					pass.Reportf(n.Pos(), "pooled %s (from %s) stored in %s; a field outlives the Put and the next Get would alias it", obj.Name(), src, types.ExprString(target))
				case *ast.Ident:
					if v, ok := info.ObjectOf(target).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						pass.Reportf(n.Pos(), "pooled %s (from %s) stored in package variable %s; a global outlives the Put", obj.Name(), src, target.Name)
					}
				}
			}
		case *ast.GoStmt:
			// Capture is aliasing no matter how deep in the call: flag any
			// reference from the spawned call's function or arguments.
			for obj, src := range pooled {
				captured := uses(n.Call.Fun, obj)
				for _, a := range n.Call.Args {
					captured = captured || uses(a, obj)
				}
				if captured {
					pass.Reportf(n.Pos(), "pooled %s (from %s) captured by goroutine; if the goroutine outlives the Put it races the pool's next Get", obj.Name(), src)
				}
			}
		}
		return true
	})
}
