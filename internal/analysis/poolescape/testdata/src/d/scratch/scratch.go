// Package scratch exercises every poolescape escape route: return, field
// store, global store, goroutine capture — plus the sanctioned patterns.
package scratch

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

var global []byte

type holder struct {
	buf []byte
}

// Leak returns pooled storage; the caller would hold it past its Put.
func Leak() []byte {
	buf := bufPool.Get().([]byte)
	return buf // want `pooled buf \(from sync\.Pool\.Get\) returned`
}

// Park stores pooled storage in another object's field.
func Park(h *holder) {
	buf := bufPool.Get().([]byte)
	h.buf = buf // want `pooled buf \(from sync\.Pool\.Get\) stored in h\.buf`
	bufPool.Put(buf[:0])
}

// Pin parks pooled storage in a package variable.
func Pin() {
	buf := bufPool.Get().([]byte)
	global = buf // want `pooled buf \(from sync\.Pool\.Get\) stored in package variable global`
	bufPool.Put(buf[:0])
}

// Race hands pooled storage to a goroutine that may outlive the Put.
func Race(done chan struct{}) {
	buf := bufPool.Get().([]byte)
	go consume(buf, done) // want `pooled buf \(from sync\.Pool\.Get\) captured by goroutine`
	bufPool.Put(buf[:0])
}

func consume(b []byte, done chan struct{}) {
	_ = b
	close(done)
}

// Borrow is the sanctioned provider pattern: pooled storage returned
// together with the func-typed release that ends its lease. Silent.
func Borrow() ([]byte, func()) {
	buf := bufPool.Get().([]byte)
	return buf, func() { bufPool.Put(buf[:0]) }
}

// Reborrow draws through the Borrow convention and leaks it anyway.
func Reborrow() []byte {
	rows, release := Borrow()
	defer release()
	return rows // want `pooled rows \(from Borrow\) returned`
}

type arena struct{ flat []float64 }

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// Resize mutates the pooled value's own field — how pooled arenas grow and
// shrink. Not an escape, silent.
func Resize(n int) {
	a := arenaPool.Get().(*arena)
	a.flat = a.flat[:0]
	for i := 0; i < n; i++ {
		a.flat = append(a.flat, float64(i))
	}
	arenaPool.Put(a)
}

// Keep is a documented exception.
func Keep() []byte {
	buf := bufPool.Get().([]byte)
	//lint:ignore poolescape fixture: caller is the pool owner and returns the storage before the next Get
	return buf
}
