// Package boundedgo enforces the repository's fan-out invariant: library
// code never spawns naked goroutines. Every parallel section rides
// internal/pool.Run, which bounds worker counts, observes ctx, and keeps
// the lowest-index-error contract the engine's determinism arguments rely
// on. Only internal/pool itself (the one sanctioned goroutine site), main
// packages (they own their process), and tests are exempt.
package boundedgo

import (
	"go/ast"

	"sizeless/internal/analysis"
)

// Analyzer flags go statements in library packages.
var Analyzer = &analysis.Analyzer{
	Name: "boundedgo",
	Doc: "forbid naked go statements in library packages; all fan-out must ride " +
		"internal/pool.Run so worker counts stay bounded and context-aware",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsLibraryPackage(pass.Pkg) {
		return nil, nil
	}
	if analysis.PathHasSegment(pass.Path(), "internal/pool") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "naked go statement in library package %s: fan out through internal/pool.Run so worker counts stay bounded and ctx-aware", pass.Path())
			}
			return true
		})
	}
	return nil, nil
}
