package boundedgo_test

import (
	"testing"

	"sizeless/internal/analysis/analysistest"
	"sizeless/internal/analysis/boundedgo"
)

func TestAnalyzer(t *testing.T) {
	// a/internal/lib: violations plus a suppressed exception.
	// a/cmd/tool and a/internal/pool: exempt scopes, asserted silent.
	// a/internal/serve: daemon-shaped packages are in scope — background
	// loops and per-shard drainers get no goroutine dispensation.
	// a/internal/dag: planner-shaped packages too — shape-search fan-out
	// must ride internal/pool like every other parallel section.
	analysistest.Run(t, analysistest.TestData(t), boundedgo.Analyzer,
		"a/internal/lib", "a/cmd/tool", "a/internal/pool", "a/internal/serve",
		"a/internal/dag")
}
