// Package dag is planner-shaped library code: its shape search fans out
// over candidate fusion plans, and that fan-out must ride internal/pool —
// a naked per-shape goroutine would unbound the worker count and lose the
// lowest-index-error contract the planner's determinism rests on.
package dag

import "sync"

// SearchShapes violates the fan-out invariant: one naked goroutine per
// candidate shape.
func SearchShapes(shapes []int, score func(int)) {
	var wg sync.WaitGroup
	for _, sh := range shapes {
		wg.Add(1)
		go func() { // want `naked go statement in library package`
			defer wg.Done()
			score(sh)
		}()
	}
	wg.Wait()
}

// WatchCancel shows background helpers get no dispensation either.
func WatchCancel(done chan struct{}, cancel func()) {
	go func() { // want `naked go statement in library package`
		<-done
		cancel()
	}()
}
