// Package pool is the one sanctioned goroutine site: the bounded worker
// pool itself must spawn workers, so boundedgo skips it entirely.
package pool

// Run spawns the goroutine every other library package must ride.
func Run(fn func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	return done
}
