// Package lib is a library package (internal/ segment, non-main): naked
// goroutines are forbidden here.
package lib

import "sync"

// Fire violates the fan-out invariant with a naked goroutine.
func Fire(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `naked go statement in library package`
		wg.Done()
	}()
}

// FireNamed shows the call form is flagged too, not just literals.
func FireNamed(fn func()) {
	go fn() // want `naked go statement in library package`
}

// Sanctioned is a justified, documented exception.
func Sanctioned(done chan struct{}) {
	//lint:ignore boundedgo fixture: one-off goroutine with a documented shutdown path
	go func() { close(done) }()
}
