// Package serve mirrors the repository's fleet-daemon package: a library
// package full of daemon-shaped temptations — background loops, drainers,
// shutdown watchers. None of that exempts it from the fan-out invariant;
// every long-lived goroutine must still ride internal/pool.Run.
package serve

import "context"

// SpawnSnapshotLoop is the tempting-but-forbidden daemon shape: a
// fire-and-forget background ticker goroutine.
func SpawnSnapshotLoop(ctx context.Context, tick func()) {
	go func() { // want `naked go statement in library package`
		for ctx.Err() == nil {
			tick()
		}
	}()
}

// SpawnDrainers shows per-shard drainer fan-out is flagged the same way.
func SpawnDrainers(ctx context.Context, drain func(shard int)) {
	for i := 0; i < 4; i++ {
		go drain(i) // want `naked go statement in library package`
	}
}
