// Command tool owns its process: main packages may spawn goroutines
// freely, so nothing in this file is flagged.
package main

func main() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
