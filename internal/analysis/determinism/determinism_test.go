package determinism_test

import (
	"testing"

	"sizeless/internal/analysis/analysistest"
	"sizeless/internal/analysis/determinism"
)

func TestAnalyzer(t *testing.T) {
	// c/internal/nn: numeric-scoped violations plus a suppressed exception.
	// c/internal/nn/fastpath: shared-float accumulation in pool worker
	// closures flagged in untagged files, silent behind the fma tag.
	// c/internal/util: outside the numeric scope, asserted silent.
	// c/internal/loadgen: the scenario engine's scope — seedless draws and
	// map-order schedule assembly flagged.
	// c/internal/dag: the application planner's scope — per-seed plan
	// reproducibility forbids seedless jitter and map-order cost assembly.
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer,
		"c/internal/nn", "c/internal/nn/fastpath", "c/internal/util", "c/internal/loadgen",
		"c/internal/dag")
}
