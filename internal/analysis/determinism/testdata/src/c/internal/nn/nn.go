// Package nn sits in a numeric-scoped path (segment internal/nn), so both
// the randomness rules and the map-order rules apply.
package nn

import (
	"math/rand"
	"sort"
	"time"
)

// Draw pulls from the shared seedless source.
func Draw() float64 {
	return rand.Float64() // want `seedless global math/rand\.Float64`
}

// ClockSeed derives a seed from the wall clock.
func ClockSeed() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want `time\.Now-derived seed passed to NewSource`
	return rand.New(src)
}

// FixedSeed is the sanctioned pattern: a seed derived from a root seed.
func FixedSeed(root int64) *rand.Rand {
	return rand.New(rand.NewSource(root + 1))
}

// SumUnsorted accumulates floats in map-iteration order.
func SumUnsorted(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into total in map-iteration order`
	}
	return total
}

// CollectUnsorted appends to an outer slice in map-iteration order.
func CollectUnsorted(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map-iteration order`
	}
	return keys
}

// SumSorted iterates a sorted key slice: deterministic, silent.
func SumSorted(m map[string]float64) float64 {
	keys := sortedKeys(m)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// sortedKeys is the canonical fix; the collection step itself is the
// documented exception because the sort below erases iteration order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		//lint:ignore determinism fixture: keys are sorted immediately below, map order never reaches a result
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerKey writes through per-key slots with loop-local temporaries: each
// iteration is independent of order, silent.
func PerKey(m map[string]int, out map[string]float64) {
	for k, v := range m {
		x := float64(v)
		x *= 2
		out[k] = x
	}
}
