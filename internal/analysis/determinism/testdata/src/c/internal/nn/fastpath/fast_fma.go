//go:build fma

// The fma-gated half of the fixture: identical accumulation shapes stay
// silent because the file is behind the fast tier's tolerance oracle (the
// analyzer's fileRequiresTag check). The real build never compiles this
// file into default-tag analysis runs; the analysistest loader parses it
// regardless of tags, which is exactly what lets the fixture assert the
// skip.
package fastpath

import (
	"context"

	"c/internal/pool"
)

// FusedSharedSum mirrors SharedSum; no diagnostic: fma-gated file.
func FusedSharedSum(xs []float64) float64 {
	var total float64
	_ = pool.Run(context.Background(), len(xs), 4, func(i int) error {
		total += xs[i]
		return nil
	})
	return total
}

// FusedStripedShared mirrors StripedShared; silent for the same reason.
func FusedStripedShared(s *scratch, xs []float64) {
	_ = pool.Stripes(context.Background(), len(xs), 2, func(w, start, end int) error {
		for i := start; i < end; i++ {
			s.loss += xs[i]
		}
		return nil
	})
}
