// Package fastpath sits under internal/nn with no build tag: the
// parallel-accumulation rule applies in full. Worker closures handed to
// pool.Run/pool.Stripes must not fold floats into shared accumulators —
// the scheduling order would pick the addition order, and float addition
// is not associative.
package fastpath

import (
	"context"

	"c/internal/pool"
)

// SharedSum races workers on one float accumulator.
func SharedSum(xs []float64) float64 {
	var total float64
	_ = pool.Run(context.Background(), len(xs), 4, func(i int) error {
		total += xs[i] // want `float accumulation into total shared across pool workers`
		return nil
	})
	return total
}

// StripedShared does the same through the striped entry point, with the
// accumulator behind a struct field.
type scratch struct{ loss float64 }

func StripedShared(s *scratch, xs []float64) {
	_ = pool.Stripes(context.Background(), len(xs), 2, func(w, start, end int) error {
		for i := start; i < end; i++ {
			s.loss += xs[i] // want `float accumulation into s shared across pool workers`
		}
		return nil
	})
}

// PerWorkerSlab is the sanctioned pattern: each worker folds into a
// closure-local accumulator and publishes it to its own slot; the caller
// reduces in a fixed order. Silent.
func PerWorkerSlab(xs []float64) float64 {
	partial := make([]float64, 2)
	_ = pool.Stripes(context.Background(), len(xs), 2, func(w, start, end int) error {
		var local float64
		for i := start; i < end; i++ {
			local += xs[i]
		}
		partial[w] = local
		return nil
	})
	return partial[0] + partial[1]
}

// CountShared accumulates an integer across workers: racy, but not a
// float-determinism concern (integer addition is associative); this
// analyzer stays silent and leaves data races to the race detector.
func CountShared(xs []float64) int {
	var n int
	_ = pool.Run(context.Background(), len(xs), 4, func(i int) error {
		n += 1
		return nil
	})
	return n
}
