// Package loadgen sits in a numeric-scoped path (segment internal/loadgen):
// arrival-schedule generators must be bit-identical per seed, so the
// seedless-randomness and map-order rules both apply.
package loadgen

import (
	"math/rand"
)

// Gap draws an inter-arrival gap from the shared seedless source — the
// exact bug the scenario engine's determinism guarantee forbids.
func Gap(rate float64) float64 {
	return rand.ExpFloat64() / rate // want `seedless global math/rand\.ExpFloat64`
}

// TotalRate accumulates profile rates in map-iteration order.
func TotalRate(parts map[string]float64) float64 {
	var total float64
	for _, r := range parts {
		total += r // want `float accumulation into total in map-iteration order`
	}
	return total
}

// CollectOffsets appends breakpoints to an outer slice in map-iteration
// order — schedules built this way differ run to run.
func CollectOffsets(parts map[string]float64) []string {
	var offsets []string
	for name := range parts {
		offsets = append(offsets, name) // want `append to offsets in map-iteration order`
	}
	return offsets
}

// SeededGap is the sanctioned pattern: an explicit seeded source.
func SeededGap(seed int64, rate float64) float64 {
	return rand.New(rand.NewSource(seed)).ExpFloat64() / rate
}
