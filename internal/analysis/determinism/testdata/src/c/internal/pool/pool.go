// Package pool is a stand-in for the repository's bounded worker pool:
// the determinism analyzer matches pool.Run / pool.Stripes by package and
// function name, so this stub lets fixtures exercise the parallel-
// accumulation rule without importing the real module.
package pool

import "context"

// Run mimics the real scheduler's signature; fixtures never execute it.
func Run(ctx context.Context, n, workers int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// Stripes mimics the striped variant.
func Stripes(ctx context.Context, n, workers int, fn func(w, start, end int) error) error {
	return Run(ctx, workers, workers, func(i int) error {
		return fn(i, i*n/workers, (i+1)*n/workers)
	})
}
