// Package dag sits in a numeric-scoped path (segment internal/dag): the
// application planner promises identical plans per seed at any worker
// count, so the seedless-randomness and map-order rules both apply to its
// latency/cost assembly.
package dag

import "math/rand"

// JitterMs perturbs an edge overhead from the shared seedless source —
// plans would differ run to run.
func JitterMs(base float64) float64 {
	return base + rand.Float64() // want `seedless global math/rand\.Float64`
}

// PathCost sums per-group costs in map-iteration order: float addition is
// not associative, so the total depends on traversal order.
func PathCost(groups map[string]float64) float64 {
	var total float64
	for _, c := range groups {
		total += c // want `float accumulation into total in map-iteration order`
	}
	return total
}

// CollectGroups assembles the plan's group order from a map range — the
// rendered plan would reshuffle between runs.
func CollectGroups(groups map[string]float64) []string {
	var names []string
	for name := range groups {
		names = append(names, name) // want `append to names in map-iteration order`
	}
	return names
}

// SortedCost is the sanctioned pattern: the planner threads an explicit
// group order (topological, tie-broken by name) and sums along it, so the
// accumulation order is fixed per seed.
func SortedCost(order []string, groups map[string]float64) float64 {
	var total float64
	for _, name := range order {
		total += groups[name]
	}
	return total
}
