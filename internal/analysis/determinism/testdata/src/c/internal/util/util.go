// Package util is a library package outside the numeric scope
// (internal/nn, internal/core, internal/stats, internal/xrand): the
// map-order rules do not apply here, so nothing is flagged.
package util

// Keys collects map keys in iteration order — legal outside the numeric
// packages, where ordering does not feed float pipelines.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
