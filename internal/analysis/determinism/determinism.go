// Package determinism enforces the seed-reproducibility invariant behind
// the engine's bit-exactness oracles (the PR 4/5 parity and
// staged≡continuous assertions): every random draw must come from a seeded
// stream, seeds must derive from the run's root seed rather than the
// clock, and map iteration order must never reach float accumulation or
// slice ordering in the numeric packages.
package determinism

import (
	"go/ast"
	"go/build/constraint"
	"go/token"
	"go/types"

	"sizeless/internal/analysis"
)

// Analyzer flags seedless randomness, clock-derived seeds, map-order
// dependent numeric results, and scheduling-order dependent float
// accumulation in parallel kernel code.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid global math/rand draws, time.Now-derived seeds, map-iteration " +
		"order feeding float accumulators or slice appends in the numeric packages, " +
		"and float accumulation into shared variables inside pool worker closures in " +
		"internal/nn (outside fma-tagged files); seed-reproducibility is what keeps " +
		"the parity oracles bit-exact",
	Run: run,
}

// seedlessGlobals are the math/rand (and v2) package-level functions that
// draw from the shared, unseeded source. Constructors (New, NewSource,
// NewPCG, ...) and the Rand/Source types stay legal — xrand wraps them.
var seedlessGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32N": true, "Int64N": true, "UintN": true,
	"Uint32N": true, "Uint64N": true, "N": true,
}

// seedSinks are constructor names whose argument is a seed; feeding them
// anything derived from time.Now defeats reproducibility. Matched by name
// so fixtures with stand-in packages exercise the rule too.
var seedSinks = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "Seed": true,
}

// numericScoped reports whether the map-order rule applies: the packages
// whose float pipelines feed the bit-exact results. internal/loadgen is in
// scope because schedule sampling must be bit-identical per seed — the
// scenario lab's byte-for-byte reproducibility rests on it. internal/dag
// is in scope because the application planner promises identical plans per
// seed at any worker count: a latency or cost sum assembled in map order
// would silently break plan reproducibility.
func numericScoped(path string) bool {
	for _, seg := range []string{"internal/nn", "internal/core", "internal/stats", "internal/xrand", "internal/loadgen", "internal/dag"} {
		if analysis.PathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsLibraryPackage(pass.Pkg) {
		return nil, nil
	}
	info := pass.TypesInfo
	mapOrder := numericScoped(pass.Path())
	kernelScope := analysis.PathHasSegment(pass.Path(), "internal/nn")
	for _, f := range pass.Files {
		// Files gated behind the fma build tag live under the fast tier's
		// tolerance oracle: their worker closures accumulate into
		// per-worker slabs with a deterministic tree reduction, which this
		// syntactic check cannot distinguish from a genuine shared-float
		// race. The bit-exact default tier gets the strict rule.
		parallelAccum := kernelScope && !fileRequiresTag(f, "fma")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
				if parallelAccum {
					checkParallelAccum(pass, n)
				}
			case *ast.RangeStmt:
				if mapOrder {
					if t := info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							checkMapRange(pass, n)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// fileRequiresTag reports whether f's //go:build constraint makes the
// build tag a necessary condition: the tag appears in the expression and
// the file cannot build with it disabled (every other tag granted, the
// liberal assignment — sufficient for the repo's `fma && (...)` gates).
func fileRequiresTag(f *ast.File, tag string) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if exprMentionsTag(expr, tag) && !expr.Eval(func(t string) bool { return t != tag }) {
				return true
			}
		}
	}
	return false
}

// exprMentionsTag walks a build-constraint expression for the tag.
func exprMentionsTag(expr constraint.Expr, tag string) bool {
	switch e := expr.(type) {
	case *constraint.TagExpr:
		return e.Tag == tag
	case *constraint.NotExpr:
		return exprMentionsTag(e.X, tag)
	case *constraint.AndExpr:
		return exprMentionsTag(e.X, tag) || exprMentionsTag(e.Y, tag)
	case *constraint.OrExpr:
		return exprMentionsTag(e.X, tag) || exprMentionsTag(e.Y, tag)
	}
	return false
}

// checkParallelAccum flags float compound assignment into variables
// declared outside a worker closure passed to pool.Run or pool.Stripes:
// workers race on the accumulator, and even under a lock the accumulation
// order would follow goroutine scheduling — float addition is not
// associative, so the result changes run to run. Matched by package name
// (`pool`) so fixtures with stand-in packages exercise the rule.
func checkParallelAccum(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "pool" {
		return
	}
	if fn.Name() != "Run" && fn.Name() != "Stripes" {
		return
	}
	info := pass.TypesInfo
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch asg.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			lhs := asg.Lhs[0]
			t := info.TypeOf(lhs)
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
				return true
			}
			root := analysis.RootIdent(lhs)
			if root == nil {
				return true
			}
			obj := info.ObjectOf(root)
			if obj == nil || obj.Pos() == token.NoPos {
				return true
			}
			if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
				// Closure-local accumulator (including the worker-index
				// parameter pattern): each worker owns its own value.
				return true
			}
			pass.Reportf(asg.Pos(),
				"float accumulation into %s shared across pool workers follows goroutine scheduling order (float addition is not associative); accumulate into a per-worker slab and reduce in a fixed order, or gate the file behind the fma tag's tolerance oracle", root.Name)
			return true
		})
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") &&
		fn.Type().(*types.Signature).Recv() == nil && seedlessGlobals[fn.Name()] {
		pass.Reportf(call.Pos(), "seedless global %s.%s breaks bit-reproducibility; draw from a seeded *xrand.Stream", pkg.Path(), fn.Name())
		// A banned global never doubles as a seed sink; done.
		return
	}
	if !seedSinks[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && analysis.CalleeIs(pass.TypesInfo, c, "time.Now") {
				found = true
				return false
			}
			return true
		})
		if found {
			pass.Reportf(call.Pos(), "time.Now-derived seed passed to %s defeats seed-reproducibility; derive seeds from the run's root seed (xrand convention)", fn.Name())
			return
		}
	}
}

// checkMapRange flags order-sensitive sinks inside a range-over-map body:
// float compound assignment into an accumulator declared outside the loop,
// and appends to a slice declared outside the loop.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	outside := func(e ast.Expr) (string, bool) {
		root := analysis.RootIdent(e)
		if root == nil {
			return "", false
		}
		obj := info.ObjectOf(root)
		if obj == nil || obj.Pos() == token.NoPos {
			return "", false
		}
		// Declared outside the loop body: the accumulated value survives
		// the loop, so iteration order reaches the result.
		if obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End() {
			return root.Name, true
		}
		return "", false
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := asg.Lhs[0]
			t := info.TypeOf(lhs)
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
				return true
			}
			if name, ok := outside(lhs); ok {
				pass.Reportf(asg.Pos(), "float accumulation into %s in map-iteration order is nondeterministic (float addition is not associative); iterate a sorted key slice", name)
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range asg.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, ok := info.ObjectOf(id).(*types.Builtin); !ok {
					continue
				}
				if i >= len(asg.Lhs) {
					continue
				}
				if name, ok := outside(asg.Lhs[i]); ok {
					pass.Reportf(asg.Pos(), "append to %s in map-iteration order is nondeterministic; collect keys, sort, then iterate", name)
				}
			}
		}
		return true
	})
}
