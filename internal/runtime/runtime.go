// Package runtime executes workload specs on the simulated platform in
// virtual time. It is the stand-in for "Node.js on an AWS Lambda worker":
// given a function spec and a memory size, it converts declared work into
// wall-clock time using the platform's memory-dependent resource model and
// maintains the cumulative counters the monitoring wrapper diffs
// (paper §3.2).
//
// The execution model, phase by phase:
//
//   - CPU phases run at the memory-scaled CPU share, with a throttling
//     penalty below one vCPU and a GC slowdown when the heap nears the
//     memory limit. Single-threaded phases block the event loop (producing
//     the perf_hooks lag the paper monitors); threadpool phases do not.
//   - File I/O runs at the memory-scaled /tmp bandwidth.
//   - Service calls pay a remote latency that does NOT scale with memory,
//     plus a transfer time over the memory-scaled network bandwidth, plus
//     client-side SDK CPU.
//   - Sleeps are memory-independent.
//
// Every phase is jittered with lognormal noise; instances carry a small
// persistent speed factor modelling worker heterogeneity.
package runtime

import (
	"fmt"
	"math"
	"time"

	"sizeless/internal/monitoring"
	"sizeless/internal/platform"
	"sizeless/internal/services"
	"sizeless/internal/workload"
	"sizeless/internal/xrand"
)

// Env is the shared execution environment: the platform, the managed
// services, and a global drift factor modelling provider-side performance
// change between measurement campaigns (the paper's case studies were
// measured 2–9 months after the training dataset).
type Env struct {
	Platform platform.Config
	Services *services.Registry
	// Drift multiplies all phase durations. 1.0 = no drift.
	Drift float64
}

// NewEnv returns an Env with the default (AWS-Lambda-like) platform and
// services.
func NewEnv() *Env {
	return NewEnvFor(platform.DefaultConfig())
}

// NewEnvFor returns an Env running the given platform configuration —
// the hook through which a platform.Provider parameterizes the simulation.
func NewEnvFor(cfg platform.Config) *Env {
	return &Env{
		Platform: cfg,
		Services: services.NewRegistry(nil),
		Drift:    1.0,
	}
}

func (e *Env) drift() float64 {
	if e.Drift <= 0 {
		return 1
	}
	return e.Drift
}

// Instance is one warm function instance: it owns the cumulative counters
// (process.cpuUsage, /proc/net/dev, ...) that only reset when the instance
// is recycled, and a persistent hardware speed factor.
type Instance struct {
	env  *Env
	spec *workload.Spec
	mem  platform.MemorySize
	rng  *xrand.Stream

	speedFactor float64
	snap        monitoring.Snapshot
	invocations int
	initialized bool
}

var _ monitoring.Probe = (*Instance)(nil)

// NewInstance creates a fresh (cold) instance of spec at memory size m.
// The rng stream should be unique to this instance.
func NewInstance(env *Env, spec *workload.Spec, m platform.MemorySize, rng *xrand.Stream) (*Instance, error) {
	if env == nil || env.Services == nil {
		return nil, fmt.Errorf("runtime: nil environment")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if !env.Platform.ValidSize(m) {
		return nil, fmt.Errorf("runtime: memory size %v not deployable on this platform", m)
	}
	inst := &Instance{
		env:         env,
		spec:        spec,
		mem:         m,
		rng:         rng,
		speedFactor: rng.TruncNormal(1.0, 0.035, 0.9, 1.1),
	}
	// Baseline gauges for a booted runtime before any invocation.
	res := env.Platform.Resources
	inst.snap.HeapLimitMB = res.AvailableHeapMB(m)
	inst.snap.HeapUsedMB = spec.BaseHeapMB
	inst.snap.HeapTotalMB = spec.BaseHeapMB*1.2 + 4
	inst.snap.AvailableHeapMB = math.Max(inst.snap.HeapLimitMB-inst.snap.HeapTotalMB, 0)
	inst.snap.PhysicalHeapMB = inst.snap.HeapTotalMB + 2
	inst.snap.RSSMB = inst.snap.HeapTotalMB + 30
	inst.snap.MaxRSSMB = inst.snap.RSSMB
	inst.snap.BytecodeMetaMB = spec.CodeMB * 0.4
	return inst, nil
}

// Memory returns the instance's memory size.
func (i *Instance) Memory() platform.MemorySize { return i.mem }

// Invocations returns how many invocations this instance has served.
func (i *Instance) Invocations() int { return i.invocations }

// Snapshot implements monitoring.Probe.
func (i *Instance) Snapshot() monitoring.Snapshot { return i.snap }

// RunInit performs cold-start initialization (module loading), advancing
// the cumulative counters and returning the initialization duration. It
// runs *before* the monitored handler, exactly as Lambda init runs before
// the handler — so its CPU time lands outside the monitor's diff window.
func (i *Instance) RunInit() time.Duration {
	if i.initialized {
		return 0
	}
	i.initialized = true
	res := i.env.Platform.Resources
	speed := res.SingleThreadSpeed(i.mem) * i.speedFactor
	// Module loading: ~8 ms of CPU per MB of deployment package.
	work := i.spec.CodeMB * 8.0
	wall := i.rng.Jitter(work/speed, 0.15) * i.env.drift()
	i.snap.UserCPU += msToDur(wall * speed)
	i.snap.VolCtx += 2
	platformDelay := i.env.Platform.ColdStartDelay(i.mem)
	return platformDelay + msToDur(wall)
}

// execState carries per-invocation accumulation.
type execState struct {
	wallMs       float64
	heapMB       float64
	mallocPeakMB float64
	bytesRecv    int64
	bytesSent    int64
	lagSamples   []float64
}

// Invoke executes one invocation, advancing the instance counters, and
// returns the handler-inner execution time plus the event-loop lag window.
// It matches the monitoring.Handler signature via a closure:
//
//	monitor.Record(start, cold, func() (time.Duration, monitoring.LagSample, error) {
//	    return inst.Invoke()
//	})
func (i *Instance) Invoke() (time.Duration, monitoring.LagSample, error) {
	noise := i.spec.NoiseCoV
	drift := i.env.drift()

	st := execState{heapMB: i.spec.BaseHeapMB}

	// Event payload arrives over the instance's network interface.
	i.receive(&st, i.spec.PayloadKB)

	for idx, op := range i.spec.Ops {
		if err := i.execOp(&st, op, noise, drift); err != nil {
			return 0, monitoring.LagSample{}, fmt.Errorf("runtime: op %d of %q: %w", idx, i.spec.Name, err)
		}
	}

	// Response leaves over the network interface.
	i.transmit(&st, i.spec.ResponseKB)

	i.finishInvocation(&st)
	lag := lagStats(st.lagSamples, i.rng)
	dur := msToDur(st.wallMs)
	i.invocations++
	return dur, lag, nil
}

func (i *Instance) execOp(st *execState, op workload.Op, noise, drift float64) error {
	res := i.env.Platform.Resources
	switch o := op.(type) {
	case workload.CPUOp:
		i.execCPU(st, o, noise, drift)
	case workload.AllocOp:
		st.heapMB += o.MB
		st.mallocPeakMB += o.MB
		// Allocation costs ~0.08 ms CPU per MB (zeroing + bookkeeping).
		i.execCPU(st, workload.CPUOp{Label: "alloc", WorkMs: o.MB * 0.08, Parallelism: 1}, noise, drift)
	case workload.FileReadOp:
		bw := res.IOBandwidthMBps(i.mem) * i.speedFactor
		wall := i.rng.Jitter(o.MB/bw*1000, noise) * drift
		st.wallMs += wall
		i.snap.SystemCPU += msToDur(o.MB * 0.10)
		i.snap.FSReads += int64(math.Ceil(o.MB * 16)) // 64 KB chunks
		i.snap.VolCtx += 1 + int64(o.MB/4)
		st.lagSamples = append(st.lagSamples, i.rng.Uniform(0.05, 0.6))
	case workload.FileWriteOp:
		bw := res.IOBandwidthMBps(i.mem) * 0.8 * i.speedFactor
		wall := i.rng.Jitter(o.MB/bw*1000, noise) * drift
		st.wallMs += wall
		i.snap.SystemCPU += msToDur(o.MB * 0.12)
		i.snap.FSWrites += int64(math.Ceil(o.MB * 16))
		i.snap.VolCtx += 1 + int64(o.MB/4)
		st.lagSamples = append(st.lagSamples, i.rng.Uniform(0.05, 0.6))
	case workload.ServiceOp:
		if err := i.execService(st, o, noise, drift); err != nil {
			return err
		}
	case workload.SleepOp:
		st.wallMs += i.rng.Jitter(o.Ms, noise/2) * drift
		i.snap.VolCtx++
		st.lagSamples = append(st.lagSamples, i.rng.Uniform(0.05, 0.4))
	default:
		return fmt.Errorf("unsupported op type %T", op)
	}
	return nil
}

// execCPU models a compute phase including GC pressure and throttling.
func (i *Instance) execCPU(st *execState, o workload.CPUOp, noise, drift float64) {
	if o.WorkMs <= 0 {
		return
	}
	res := i.env.Platform.Resources
	if o.TransientAllocMB > st.mallocPeakMB {
		st.mallocPeakMB = o.TransientAllocMB
	}
	gc := res.GCSlowdown(i.mem, st.heapMB+o.TransientAllocMB*0.5)
	par := o.Parallelism
	if par < 1 {
		par = 1
	}
	speed := res.ParallelSpeed(i.mem, par) * i.speedFactor
	effWork := o.WorkMs * gc
	wall := i.rng.Jitter(effWork/speed, noise) * drift
	st.wallMs += wall
	cpuConsumed := wall * speed
	i.snap.UserCPU += msToDur(cpuConsumed)

	// Single-threaded phases block the event loop for their whole wall
	// duration; threadpool work leaves the loop responsive.
	if par <= 1 {
		st.lagSamples = append(st.lagSamples, wall)
	} else {
		st.lagSamples = append(st.lagSamples, i.rng.Uniform(0.1, 1.0))
	}

	// cgroup CPU throttling descheds the process ~10×(1-share) times per
	// second of runtime when below one vCPU.
	share := res.CPUShare(i.mem)
	if share < 1 {
		descheds := wall / 1000 * 10 * (1 - share)
		i.snap.InvolCtx += int64(math.Ceil(descheds))
	}
	i.snap.VolCtx++
}

func (i *Instance) execService(st *execState, o workload.ServiceOp, noise, drift float64) error {
	res := i.env.Platform.Resources
	profile, err := i.env.Services.Profile(o.Service)
	if err != nil {
		return err
	}
	for c := 0; c < o.Calls; c++ {
		remote, err := i.env.Services.SampleLatency(o.Service, i.rng)
		if err != nil {
			return err
		}
		// Remote processing: pure wait, memory-independent.
		st.wallMs += remote * drift

		// Transfer rides the min of the function's and the service's
		// bandwidth — the memory-dependent part of a service call.
		bw := math.Min(res.NetBandwidthMBps(i.mem)*i.speedFactor, profile.ServerBandwidthMBps)
		transferMB := (o.RequestKB + o.ResponseKB) / 1024
		if transferMB > 0 && bw > 0 {
			st.wallMs += i.rng.Jitter(transferMB/bw*1000, noise) * drift
		}

		// Client-side SDK CPU (marshaling, TLS).
		gc := res.GCSlowdown(i.mem, st.heapMB)
		speed := res.SingleThreadSpeed(i.mem) * i.speedFactor
		clientWork := profile.ClientCPUMs * gc
		clientWall := i.rng.Jitter(clientWork/speed, noise) * drift
		st.wallMs += clientWall
		i.snap.UserCPU += msToDur(clientWall * speed)
		i.snap.SystemCPU += msToDur(0.15)

		i.receive(st, o.ResponseKB)
		i.transmit(st, o.RequestKB)
		i.snap.VolCtx += 2
		st.lagSamples = append(st.lagSamples, i.rng.Uniform(0.05, 0.8))
	}
	return nil
}

// receive accounts kb arriving at the instance's network interface.
func (i *Instance) receive(st *execState, kb float64) {
	if kb <= 0 {
		return
	}
	bytes := int64(kb * 1024)
	i.snap.BytesRecv += bytes
	i.snap.PktsRecv += pkts(bytes)
	st.bytesRecv += bytes
}

// transmit accounts kb leaving the instance's network interface.
func (i *Instance) transmit(st *execState, kb float64) {
	if kb <= 0 {
		return
	}
	bytes := int64(kb * 1024)
	i.snap.BytesSent += bytes
	i.snap.PktsSent += pkts(bytes)
	st.bytesSent += bytes
}

// finishInvocation refreshes the instantaneous gauges.
func (i *Instance) finishInvocation(st *execState) {
	res := i.env.Platform.Resources
	// A fraction of transient allocations survives until the post-handler
	// gauge read (not yet collected).
	residual := st.mallocPeakMB * i.rng.Uniform(0.05, 0.25)
	heapUsed := st.heapMB + residual
	i.snap.HeapUsedMB = heapUsed
	i.snap.HeapTotalMB = heapUsed*1.2 + 4
	i.snap.HeapLimitMB = res.AvailableHeapMB(i.mem)
	i.snap.AvailableHeapMB = math.Max(i.snap.HeapLimitMB-i.snap.HeapTotalMB, 0)
	i.snap.PhysicalHeapMB = i.snap.HeapTotalMB + 2
	i.snap.MallocMemMB = st.mallocPeakMB
	transferMB := float64(st.bytesRecv+st.bytesSent) / (1024 * 1024)
	i.snap.ExternalMemMB = math.Min(transferMB*0.5, 64) + 1
	i.snap.RSSMB = i.snap.HeapTotalMB + 30 + i.snap.ExternalMemMB
	if i.snap.RSSMB > i.snap.MaxRSSMB {
		i.snap.MaxRSSMB = i.snap.RSSMB
	}
	i.snap.InvolCtx += int64(i.rng.Intn(3))
	i.snap.BytecodeMetaMB = i.spec.CodeMB * 0.4
}

// lagStats reduces event-loop lag samples to the perf_hooks window stats.
func lagStats(samples []float64, rng *xrand.Stream) monitoring.LagSample {
	if len(samples) == 0 {
		v := rng.Uniform(0.05, 0.5)
		return monitoring.LagSample{Min: v, Max: v, Mean: v, Std: 0}
	}
	min, max := math.Inf(1), math.Inf(-1)
	var sum float64
	for _, s := range samples {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		sum += s
	}
	mean := sum / float64(len(samples))
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(samples)))
	return monitoring.LagSample{Min: min, Max: max, Mean: mean, Std: std}
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func pkts(bytes int64) int64 {
	const mtuPayload = 1448
	return (bytes + mtuPayload - 1) / mtuPayload
}
