package runtime

import (
	"testing"
	"time"

	"sizeless/internal/monitoring"
	"sizeless/internal/platform"
	"sizeless/internal/services"
	"sizeless/internal/workload"
	"sizeless/internal/xrand"
)

func cpuSpec(workMs float64) *workload.Spec {
	return &workload.Spec{
		Name:       "cpu-fn",
		Ops:        []workload.Op{workload.CPUOp{Label: "calc", WorkMs: workMs, Parallelism: 1}},
		BaseHeapMB: 20,
		CodeMB:     2,
		NoiseCoV:   0, // deterministic for tests
	}
}

func serviceSpec() *workload.Spec {
	return &workload.Spec{
		Name: "svc-fn",
		Ops: []workload.Op{
			workload.ServiceOp{Service: services.ExternalAPI, Op: "GET", Calls: 2, RequestKB: 1, ResponseKB: 4},
		},
		BaseHeapMB: 20,
		CodeMB:     2,
		NoiseCoV:   0,
	}
}

// invokeOnce runs one warm invocation on a fresh instance with a fixed seed.
func invokeOnce(t *testing.T, spec *workload.Spec, m platform.MemorySize, seed int64) (time.Duration, *Instance) {
	t.Helper()
	env := NewEnv()
	inst, err := NewInstance(env, spec, m, xrand.New(seed).Derive("inst"))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := inst.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	return d, inst
}

func TestCPUBoundScalesWithMemory(t *testing.T) {
	spec := cpuSpec(500)
	var prev time.Duration
	durations := make(map[platform.MemorySize]time.Duration)
	for _, m := range platform.StandardSizes() {
		d, _ := invokeOnce(t, spec, m, 1)
		durations[m] = d
		if prev != 0 && d > prev {
			t.Errorf("CPU-bound time should not increase with memory: %v at %v > %v", d, m, prev)
		}
		prev = d
	}
	// Super-linear below one vCPU: halving from 128 to 256 more than
	// halves the time (throttle-overhead effect, paper Fig. 1).
	if r := float64(durations[128]) / float64(durations[256]); r <= 2 {
		t.Errorf("expected super-linear speedup 128→256, ratio = %v", r)
	}
	// Single-threaded work saturates at/above 1792 MB.
	if r := float64(durations[2048]) / float64(durations[3008]); r > 1.01 {
		t.Errorf("single-threaded work should saturate past 1792MB, ratio = %v", r)
	}
	// Sanity: at 3008 MB, 500 ms of work takes about 500 ms of wall time.
	if durations[3008] < 400*time.Millisecond || durations[3008] > 650*time.Millisecond {
		t.Errorf("3008MB duration = %v, want ~500ms", durations[3008])
	}
}

func TestParallelWorkKeepsScalingPast1792(t *testing.T) {
	spec := &workload.Spec{
		Name:       "par-fn",
		Ops:        []workload.Op{workload.CPUOp{Label: "gzip", WorkMs: 400, Parallelism: 2}},
		BaseHeapMB: 20,
		NoiseCoV:   0,
	}
	d2048, _ := invokeOnce(t, spec, platform.Mem2048, 1)
	d3008, _ := invokeOnce(t, spec, platform.Mem3008, 1)
	if float64(d3008) >= float64(d2048)*0.95 {
		t.Errorf("parallel work should keep speeding up: 2048=%v 3008=%v", d2048, d3008)
	}
}

func TestServiceBoundFlatAcrossMemory(t *testing.T) {
	spec := serviceSpec()
	d128, _ := invokeOnce(t, spec, platform.Mem128, 1)
	d3008, _ := invokeOnce(t, spec, platform.Mem3008, 1)
	// Remote latency dominates; allow modest improvement from transfer +
	// client CPU but nothing like CPU-bound scaling.
	ratio := float64(d128) / float64(d3008)
	if ratio > 2.0 {
		t.Errorf("service-bound function scaled too much with memory: ratio %v", ratio)
	}
	if d3008 > d128 {
		t.Errorf("more memory should never slow a function down: %v vs %v", d128, d3008)
	}
}

func TestGCPressureReliefWithMemory(t *testing.T) {
	// 70 MB heap: thrashes at 128 MB, comfortable at 1024 MB.
	heavy := &workload.Spec{
		Name: "heap-fn",
		Ops: []workload.Op{
			workload.AllocOp{MB: 50},
			workload.CPUOp{Label: "process", WorkMs: 100, Parallelism: 1},
		},
		BaseHeapMB: 20,
		NoiseCoV:   0,
	}
	light := &workload.Spec{
		Name: "light-fn",
		Ops: []workload.Op{
			workload.CPUOp{Label: "process", WorkMs: 100, Parallelism: 1},
		},
		BaseHeapMB: 20,
		NoiseCoV:   0,
	}
	dHeavy, _ := invokeOnce(t, heavy, platform.Mem128, 1)
	dLight, _ := invokeOnce(t, light, platform.Mem128, 1)
	// The heavy function pays a GC penalty at 128 MB beyond its small
	// extra allocation CPU.
	if float64(dHeavy) < float64(dLight)*1.15 {
		t.Errorf("expected GC penalty at 128MB: heavy=%v light=%v", dHeavy, dLight)
	}
	dHeavyBig, _ := invokeOnce(t, heavy, platform.Mem1024, 1)
	dLightBig, _ := invokeOnce(t, light, platform.Mem1024, 1)
	if float64(dHeavyBig) > float64(dLightBig)*1.10 {
		t.Errorf("GC penalty should vanish at 1024MB: heavy=%v light=%v", dHeavyBig, dLightBig)
	}
}

func TestCountersCumulativeAcrossInvocations(t *testing.T) {
	env := NewEnv()
	inst, err := NewInstance(env, serviceSpec(), platform.Mem512, xrand.New(3).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inst.Invoke(); err != nil {
		t.Fatal(err)
	}
	s1 := inst.Snapshot()
	if _, _, err := inst.Invoke(); err != nil {
		t.Fatal(err)
	}
	s2 := inst.Snapshot()
	if s2.BytesRecv <= s1.BytesRecv {
		t.Error("BytesRecv should accumulate across invocations")
	}
	if s2.UserCPU <= s1.UserCPU {
		t.Error("UserCPU should accumulate across invocations")
	}
	if inst.Invocations() != 2 {
		t.Errorf("Invocations() = %d, want 2", inst.Invocations())
	}
	if s2.MaxRSSMB < s1.MaxRSSMB {
		t.Error("MaxRSS must be monotone")
	}
}

func TestColdStartInit(t *testing.T) {
	env := NewEnv()
	inst, err := NewInstance(env, cpuSpec(10), platform.Mem128, xrand.New(4).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	before := inst.Snapshot()
	initDur := inst.RunInit()
	after := inst.Snapshot()
	if initDur <= env.Platform.ColdStartBase {
		t.Errorf("init duration %v should exceed the platform base %v", initDur, env.Platform.ColdStartBase)
	}
	if after.UserCPU <= before.UserCPU {
		t.Error("init should consume CPU (module loading)")
	}
	// Second init is a no-op.
	if d := inst.RunInit(); d != 0 {
		t.Errorf("second RunInit = %v, want 0", d)
	}

	// Cold start shrinks with memory.
	instBig, err := NewInstance(env, cpuSpec(10), platform.Mem2048, xrand.New(4).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	if big := instBig.RunInit(); big >= initDur {
		t.Errorf("cold start at 2048MB (%v) should beat 128MB (%v)", big, initDur)
	}
}

func TestMonitorIntegration(t *testing.T) {
	env := NewEnv()
	spec := serviceSpec()
	inst, err := NewInstance(env, spec, platform.Mem512, xrand.New(5).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	store := monitoring.NewMemoryStore()
	mon := &monitoring.Monitor{FunctionID: spec.Name, Probe: inst, Store: store}

	inv, err := mon.Record(0, false, func() (time.Duration, monitoring.LagSample, error) {
		return inst.Invoke()
	})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Metrics.Get(monitoring.ExecutionTime) <= 0 {
		t.Error("executionTime should be positive")
	}
	// Two ExternalAPI calls with 4 KB responses plus no payload: 8 KB received.
	if got := inv.Metrics.Get(monitoring.BytesReceived); got != 8*1024 {
		t.Errorf("netByteRx = %v, want 8192", got)
	}
	if got := inv.Metrics.Get(monitoring.PackagesReceived); got <= 0 {
		t.Error("packets received should be positive")
	}
	if got := inv.Metrics.Get(monitoring.HeapUsed); got < spec.BaseHeapMB {
		t.Errorf("heapUsed = %v, want >= base heap %v", got, spec.BaseHeapMB)
	}
	// CPU time must not exceed wall time times the CPU share.
	share := env.Platform.Resources.CPUShare(platform.Mem512)
	if cpu, wall := inv.Metrics.Get(monitoring.UserCPUTime), inv.Metrics.Get(monitoring.ExecutionTime); cpu > wall*share*1.2 {
		t.Errorf("user CPU %v implausibly high for wall %v at share %v", cpu, wall, share)
	}
}

func TestEventLoopLagReflectsSyncBlocks(t *testing.T) {
	// A single-threaded CPU block produces a max lag close to the block
	// duration; a service-bound function keeps the loop responsive.
	blockSpec := cpuSpec(200)
	_, instA := invokeOnce(t, blockSpec, platform.Mem3008, 1)
	_ = instA
	env := NewEnv()
	inst, err := NewInstance(env, blockSpec, platform.Mem3008, xrand.New(1).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	d, lag, err := inst.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if lag.Max < float64(d)/float64(time.Millisecond)*0.8 {
		t.Errorf("sync block should drive max lag near duration: lag=%v dur=%v", lag.Max, d)
	}

	instSvc, err := NewInstance(env, serviceSpec(), platform.Mem3008, xrand.New(1).Derive("j"))
	if err != nil {
		t.Fatal(err)
	}
	_, lagSvc, err := instSvc.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if lagSvc.Max > 10 {
		t.Errorf("service-bound function should have small lag, got %v", lagSvc.Max)
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	spec := serviceSpec()
	spec.NoiseCoV = 0.2
	d1, i1 := invokeOnce(t, spec, platform.Mem512, 42)
	d2, i2 := invokeOnce(t, spec, platform.Mem512, 42)
	if d1 != d2 {
		t.Errorf("same seed must reproduce durations: %v vs %v", d1, d2)
	}
	if i1.Snapshot() != i2.Snapshot() {
		t.Error("same seed must reproduce snapshots")
	}
}

func TestDriftSlowsExecution(t *testing.T) {
	spec := cpuSpec(100)
	env := NewEnv()
	inst, err := NewInstance(env, spec, platform.Mem512, xrand.New(9).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := inst.Invoke()
	if err != nil {
		t.Fatal(err)
	}

	envDrift := NewEnv()
	envDrift.Drift = 1.5
	instD, err := NewInstance(envDrift, spec, platform.Mem512, xrand.New(9).Derive("i"))
	if err != nil {
		t.Fatal(err)
	}
	slowed, _, err := instD.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(slowed) / float64(base)
	if ratio < 1.4 || ratio > 1.6 {
		t.Errorf("drift 1.5 should scale duration ~1.5×, got %v", ratio)
	}
}

func TestNewInstanceErrors(t *testing.T) {
	env := NewEnv()
	if _, err := NewInstance(nil, cpuSpec(1), platform.Mem128, xrand.New(1)); err == nil {
		t.Error("nil env should error")
	}
	bad := &workload.Spec{Name: ""}
	if _, err := NewInstance(env, bad, platform.Mem128, xrand.New(1)); err == nil {
		t.Error("invalid spec should error")
	}
	if _, err := NewInstance(env, cpuSpec(1), platform.MemorySize(100), xrand.New(1)); err == nil {
		t.Error("invalid memory size should error")
	}
}

func TestSleepIndependentOfMemory(t *testing.T) {
	spec := &workload.Spec{
		Name:       "sleep-fn",
		Ops:        []workload.Op{workload.SleepOp{Ms: 50}},
		BaseHeapMB: 10,
		NoiseCoV:   0,
	}
	d128, _ := invokeOnce(t, spec, platform.Mem128, 1)
	d3008, _ := invokeOnce(t, spec, platform.Mem3008, 1)
	if d128 != d3008 {
		t.Errorf("sleep should be memory-independent: %v vs %v", d128, d3008)
	}
	if d128 < 49*time.Millisecond || d128 > 51*time.Millisecond {
		t.Errorf("sleep duration = %v, want ~50ms", d128)
	}
}

func TestFileIOScalesWithMemory(t *testing.T) {
	spec := &workload.Spec{
		Name:       "io-fn",
		Ops:        []workload.Op{workload.FileWriteOp{MB: 20}, workload.FileReadOp{MB: 20}},
		BaseHeapMB: 10,
		NoiseCoV:   0,
	}
	d128, inst := invokeOnce(t, spec, platform.Mem128, 1)
	d1024, _ := invokeOnce(t, spec, platform.Mem1024, 1)
	if d1024 >= d128 {
		t.Errorf("file I/O should speed up with memory: %v vs %v", d128, d1024)
	}
	snap := inst.Snapshot()
	if snap.FSReads != 320 || snap.FSWrites != 320 {
		t.Errorf("fs op counts = %d/%d, want 320/320", snap.FSReads, snap.FSWrites)
	}
}
