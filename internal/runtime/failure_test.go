package runtime

import (
	"testing"
	"time"

	"sizeless/internal/platform"
	"sizeless/internal/services"
	"sizeless/internal/workload"
	"sizeless/internal/xrand"
)

// Failure injection: the simulator must stay finite and well-behaved under
// pathological configurations.

func TestOvercommittedHeapThrashesButCompletes(t *testing.T) {
	// A 150 MB working set on a 128 MB instance: Node would thrash close
	// to the cgroup limit. The model must produce a severe but finite
	// slowdown, fully relieved at 1024 MB.
	spec := &workload.Spec{
		Name: "oom-adjacent",
		Ops: []workload.Op{
			workload.AllocOp{MB: 120},
			workload.CPUOp{Label: "churn", WorkMs: 50, Parallelism: 1},
		},
		BaseHeapMB: 30,
		NoiseCoV:   0,
	}
	env := NewEnv()
	small, err := NewInstance(env, spec, platform.Mem128, xrand.New(1).Derive("s"))
	if err != nil {
		t.Fatal(err)
	}
	dSmall, _, err := small.Invoke()
	if err != nil {
		t.Fatalf("overcommitted instance must not fail: %v", err)
	}
	big, err := NewInstance(env, spec, platform.Mem1024, xrand.New(1).Derive("b"))
	if err != nil {
		t.Fatal(err)
	}
	dBig, _, err := big.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	// Thrashing at 128 MB must cost far more than the pure CPU-share ratio
	// (~7.7×) would predict.
	ratio := float64(dSmall) / float64(dBig)
	if ratio < 10 {
		t.Errorf("expected severe GC thrashing at 128MB: ratio %v", ratio)
	}
	if dSmall > 5*time.Minute {
		t.Errorf("slowdown should stay finite and bounded: %v", dSmall)
	}
}

func TestServiceLatencySpikeVisibleInExecution(t *testing.T) {
	spec := &workload.Spec{
		Name: "svc-dependent",
		Ops: []workload.Op{
			workload.ServiceOp{Service: services.DynamoDB, Op: "Query", Calls: 2, RequestKB: 1, ResponseKB: 4},
		},
		BaseHeapMB: 20,
		NoiseCoV:   0,
	}
	healthy := NewEnv()
	inst, err := NewInstance(healthy, spec, platform.Mem512, xrand.New(2).Derive("h"))
	if err != nil {
		t.Fatal(err)
	}
	dHealthy, _, err := inst.Invoke()
	if err != nil {
		t.Fatal(err)
	}

	// Inject a 20× latency regression on DynamoDB.
	degraded := NewEnv()
	reg := services.NewRegistry(nil)
	p, err := reg.Profile(services.DynamoDB)
	if err != nil {
		t.Fatal(err)
	}
	p.BaseLatencyMs *= 20
	reg.SetProfile(services.DynamoDB, p)
	degraded.Services = reg

	instD, err := NewInstance(degraded, spec, platform.Mem512, xrand.New(2).Derive("h"))
	if err != nil {
		t.Fatal(err)
	}
	dDegraded, _, err := instD.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if float64(dDegraded) < 5*float64(dHealthy) {
		t.Errorf("latency spike not visible: healthy %v vs degraded %v", dHealthy, dDegraded)
	}
}

func TestZeroWorkOpsAreFree(t *testing.T) {
	spec := &workload.Spec{
		Name: "noop-heavy",
		Ops: []workload.Op{
			workload.CPUOp{Label: "empty", WorkMs: 0, Parallelism: 1},
			workload.SleepOp{Ms: 10},
			workload.FileReadOp{MB: 0},
			workload.FileWriteOp{MB: 0},
		},
		BaseHeapMB: 10,
		NoiseCoV:   0,
	}
	env := NewEnv()
	inst, err := NewInstance(env, spec, platform.Mem128, xrand.New(3).Derive("z"))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := inst.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	// Only the sleep contributes.
	if d < 9*time.Millisecond || d > 12*time.Millisecond {
		t.Errorf("zero-work ops should be free: %v", d)
	}
}

func TestZeroCallServiceOpIsNoop(t *testing.T) {
	spec := &workload.Spec{
		Name: "zero-calls",
		Ops: []workload.Op{
			workload.ServiceOp{Service: services.S3, Op: "GetObject", Calls: 0, ResponseKB: 100},
			workload.SleepOp{Ms: 5},
		},
		BaseHeapMB: 10,
		NoiseCoV:   0,
	}
	env := NewEnv()
	inst, err := NewInstance(env, spec, platform.Mem512, xrand.New(4).Derive("q"))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := inst.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if d > 7*time.Millisecond {
		t.Errorf("zero-call service op should add no time: %v", d)
	}
	if inst.Snapshot().BytesRecv != 0 {
		t.Error("zero-call service op should transfer nothing")
	}
}
