package runtime

import (
	"testing"

	"sizeless/internal/fngen"
	"sizeless/internal/platform"
	"sizeless/internal/xrand"
)

// Property: for ANY generated function, noise-free execution time is
// non-increasing in memory size — the physical invariant the optimizer and
// the prediction monotonicity projection rely on.
func TestExecutionTimeMonotoneInMemoryProperty(t *testing.T) {
	gen := fngen.New(xrand.New(314), fngen.Options{})
	fns, err := gen.Generate(40)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	for _, fn := range fns {
		spec := fn.Spec
		spec.NoiseCoV = 0 // isolate the deterministic resource model
		var prev float64
		for i, m := range platform.StandardSizes() {
			inst, err := NewInstance(env, spec, m, xrand.New(99).Derive(spec.Name))
			if err != nil {
				t.Fatal(err)
			}
			d, _, err := inst.Invoke()
			if err != nil {
				t.Fatalf("%s at %v: %v", spec.Name, m, err)
			}
			ms := float64(d.Milliseconds())
			if i > 0 && ms > prev*1.001 {
				t.Errorf("%s (segments %v): time increased %v→%v at %v",
					spec.Name, spec.SegmentNames, prev, ms, m)
			}
			prev = ms
		}
	}
}

// Property: user CPU time never exceeds wall time multiplied by the CPU
// share — the runtime cannot consume CPU it was not allocated.
func TestCPUTimeBoundedByShareProperty(t *testing.T) {
	gen := fngen.New(xrand.New(271), fngen.Options{})
	fns, err := gen.Generate(25)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	res := env.Platform.Resources
	for _, fn := range fns {
		for _, m := range []platform.MemorySize{platform.Mem128, platform.Mem512, platform.Mem3008} {
			inst, err := NewInstance(env, fn.Spec, m, xrand.New(55).Derive(fn.Spec.Name))
			if err != nil {
				t.Fatal(err)
			}
			before := inst.Snapshot()
			d, _, err := inst.Invoke()
			if err != nil {
				t.Fatal(err)
			}
			after := inst.Snapshot()
			cpu := (after.UserCPU - before.UserCPU).Seconds()
			wall := d.Seconds()
			share := res.CPUShare(m)
			// Allow a small tolerance for the speed-factor jitter (±10%).
			if cpu > wall*share*1.15 {
				t.Errorf("%s at %v: cpu %.4fs exceeds wall %.4fs × share %.3f",
					fn.Spec.Name, m, cpu, wall, share)
			}
		}
	}
}

// Property: metric vectors contain no negative values for counters and
// gauges across random functions.
func TestMetricsNonNegativeProperty(t *testing.T) {
	gen := fngen.New(xrand.New(161), fngen.Options{})
	fns, err := gen.Generate(25)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	for _, fn := range fns {
		inst, err := NewInstance(env, fn.Spec, platform.Mem256, xrand.New(44).Derive(fn.Spec.Name))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := inst.Invoke(); err != nil {
			t.Fatal(err)
		}
		s := inst.Snapshot()
		checks := map[string]float64{
			"userCPU":   s.UserCPU.Seconds(),
			"sysCPU":    s.SystemCPU.Seconds(),
			"volCtx":    float64(s.VolCtx),
			"involCtx":  float64(s.InvolCtx),
			"fsReads":   float64(s.FSReads),
			"fsWrites":  float64(s.FSWrites),
			"bytesRecv": float64(s.BytesRecv),
			"bytesSent": float64(s.BytesSent),
			"heapUsed":  s.HeapUsedMB,
			"rss":       s.RSSMB,
			"maxRss":    s.MaxRSSMB,
		}
		for name, v := range checks {
			if v < 0 {
				t.Errorf("%s: %s = %v < 0", fn.Spec.Name, name, v)
			}
		}
	}
}

// Property: a spec executed twice on one instance yields strictly
// accumulating counters (cumulative semantics the monitor's diff relies on).
func TestCountersNeverDecreaseProperty(t *testing.T) {
	gen := fngen.New(xrand.New(100), fngen.Options{})
	fns, err := gen.Generate(10)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	for _, fn := range fns {
		inst, err := NewInstance(env, fn.Spec, platform.Mem512, xrand.New(77).Derive(fn.Spec.Name))
		if err != nil {
			t.Fatal(err)
		}
		var prev workloadCounters
		for k := 0; k < 3; k++ {
			if _, _, err := inst.Invoke(); err != nil {
				t.Fatal(err)
			}
			s := inst.Snapshot()
			cur := workloadCounters{
				s.UserCPU.Nanoseconds(), int64(s.VolCtx), s.FSReads, s.FSWrites, s.BytesRecv, s.BytesSent,
			}
			if k > 0 && !cur.atLeast(prev) {
				t.Fatalf("%s: counters decreased between invocations", fn.Spec.Name)
			}
			prev = cur
		}
	}
}

type workloadCounters struct {
	cpu, vol, fsr, fsw, rx, tx int64
}

func (c workloadCounters) atLeast(o workloadCounters) bool {
	return c.cpu >= o.cpu && c.vol >= o.vol && c.fsr >= o.fsr &&
		c.fsw >= o.fsw && c.rx >= o.rx && c.tx >= o.tx
}
