package dag

import (
	"context"
	"math"
	"reflect"
	"testing"

	"sizeless/internal/optimizer"
	"sizeless/internal/platform"
)

// coldlessConfig is a planner config with the cold-start model switched
// off, so end-to-end latency is exactly service time plus edge overhead —
// hand-computable.
func coldlessConfig(sizes ...platform.MemorySize) Config {
	pc := platform.DefaultConfig()
	pc.ColdStartBase = 0
	pc.ColdStartInit128 = 0
	return Config{Platform: pc, Sizes: sizes}
}

// edgeLatMs mirrors the model's per-edge latency for the test specs
// (PayloadKB 2 from spec()).
func edgeLatMs(tr Trigger) float64 {
	return DefaultTriggerProfiles()[tr].LatencyMs + 2*payloadTransferMsPerKB
}

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestCriticalPathChain(t *testing.T) {
	g := New("chain")
	mustAdd(t, g, spec("A", 20), flatTimes(10, 256))
	mustAdd(t, g, spec("B", 20), flatTimes(20, 256))
	mustAdd(t, g, spec("C", 20), flatTimes(30, 256))
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "B", To: "C"})
	pl, err := OptimizeSizes(context.Background(), g, coldlessConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chain latency", pl.LatencyMs, 10+20+30+2*edgeLatMs(TriggerSync))
	if pl.InvocationsPerReq != 3 {
		t.Errorf("invocations = %v, want 3", pl.InvocationsPerReq)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := New("diamond")
	mustAdd(t, g, spec("A", 20), flatTimes(10, 256))
	mustAdd(t, g, spec("B", 20), flatTimes(40, 256)) // slow branch
	mustAdd(t, g, spec("C", 20), flatTimes(20, 256))
	mustAdd(t, g, spec("D", 20), flatTimes(10, 256))
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "A", To: "C"})
	mustConnect(t, g, Edge{From: "B", To: "D"})
	mustConnect(t, g, Edge{From: "C", To: "D"})
	pl, err := OptimizeSizes(context.Background(), g, coldlessConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	// The B branch dominates: A → B → D plus two sync hops.
	approx(t, "diamond latency", pl.LatencyMs, 10+40+10+2*edgeLatMs(TriggerSync))
	// Joins are event joins, not barriers: each branch triggers D once,
	// so D runs at rate 2 and the app makes five invocations per request.
	if pl.InvocationsPerReq != 5 {
		t.Errorf("invocations = %v, want 5", pl.InvocationsPerReq)
	}
}

func TestCriticalPathFanOutAndStandalone(t *testing.T) {
	g := New("fanout")
	mustAdd(t, g, spec("A", 20), flatTimes(10, 256))
	mustAdd(t, g, spec("B", 20), flatTimes(50, 256))
	mustAdd(t, g, spec("C", 20), flatTimes(10, 256))
	mustAdd(t, g, spec("S", 20), flatTimes(100, 256)) // standalone, dominates
	mustConnect(t, g, Edge{From: "A", To: "B", Trigger: TriggerQueue})
	mustConnect(t, g, Edge{From: "A", To: "C", Trigger: TriggerQueue})
	pl, err := OptimizeSizes(context.Background(), g, coldlessConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	fanPath := 10 + 50 + edgeLatMs(TriggerQueue)
	if fanPath >= 100 {
		t.Fatal("test setup: standalone node must dominate")
	}
	approx(t, "fan-out latency", pl.LatencyMs, 100)
}

// chainGraph builds A→B→C over two sizes where the larger size is faster.
func chainGraph(t *testing.T) *Graph {
	g := New("fuse-chain")
	times := map[platform.MemorySize]float64{256: 40, 1024: 14}
	mustAdd(t, g, spec("A", 20), times)
	mustAdd(t, g, spec("B", 22), times)
	mustAdd(t, g, spec("C", 24), times)
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "B", To: "C"})
	return g
}

func TestFusionNeverIncreasesInvocations(t *testing.T) {
	cmp, err := Compare(context.Background(), chainGraph(t), coldlessConfig(256, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Fused.InvocationsPerReq > cmp.SizesOnly.InvocationsPerReq {
		t.Errorf("fusion increased invocations: %v > %v",
			cmp.Fused.InvocationsPerReq, cmp.SizesOnly.InvocationsPerReq)
	}
	// The search spaces nest (per-function ⊂ sizes-only ⊂ fused), so the
	// shared-normalization scores must be monotone.
	if cmp.SizesOnly.STotal > cmp.PerFunction.STotal+1e-12 {
		t.Errorf("sizes-only S_total %v worse than per-function %v",
			cmp.SizesOnly.STotal, cmp.PerFunction.STotal)
	}
	if cmp.Fused.STotal > cmp.SizesOnly.STotal+1e-12 {
		t.Errorf("fused S_total %v worse than sizes-only %v",
			cmp.Fused.STotal, cmp.SizesOnly.STotal)
	}
	// A clean sync chain should actually fuse: three request charges and
	// two hops collapse into one unit.
	if cmp.Fused.FusedUnits() == 0 {
		t.Error("sync chain did not fuse at all")
	}
	if cmp.Fused.CostPerReq > cmp.PerFunction.CostPerReq {
		t.Errorf("fused cost %v exceeds per-function cost %v",
			cmp.Fused.CostPerReq, cmp.PerFunction.CostPerReq)
	}
	if cmp.Fused.LatencyMs > cmp.PerFunction.LatencyMs {
		t.Errorf("fused latency %v exceeds per-function latency %v",
			cmp.Fused.LatencyMs, cmp.PerFunction.LatencyMs)
	}
}

func TestUnfusableGraphPlansIdentically(t *testing.T) {
	g := New("stream-chain")
	times := map[platform.MemorySize]float64{256: 40, 1024: 14}
	mustAdd(t, g, spec("A", 20), times)
	mustAdd(t, g, spec("B", 22), times)
	mustConnect(t, g, Edge{From: "A", To: "B", Trigger: TriggerStream})
	ctx := context.Background()
	cfg := coldlessConfig(256, 1024)
	fused, err := Optimize(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := OptimizeSizes(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused, sizes) {
		t.Errorf("stream-only graph: Optimize %+v != OptimizeSizes %+v", fused, sizes)
	}
	if fused.FusedUnits() != 0 {
		t.Error("stream edge fused")
	}
}

func TestPerFunctionReproducesOptimizer(t *testing.T) {
	g := New("baseline")
	tA := map[platform.MemorySize]float64{128: 90, 256: 42, 512: 30, 1024: 28}
	tB := map[platform.MemorySize]float64{128: 12, 256: 11, 512: 11, 1024: 11}
	mustAdd(t, g, spec("A", 20), tA)
	mustAdd(t, g, spec("B", 20), tB)
	cfg := coldlessConfig(128, 256, 512, 1024)
	pl, err := PerFunction(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]platform.MemorySize{}
	for name, times := range map[string]map[platform.MemorySize]float64{"A": tA, "B": tB} {
		rec, err := optimizer.Optimize(times, cfg.Platform.Pricing, DefaultTradeoff)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = rec.Best
	}
	for _, gp := range pl.Groups {
		if len(gp.Functions) != 1 {
			t.Fatalf("per-function plan has fused group %v", gp.Functions)
		}
		if gp.Memory != want[gp.Functions[0]] {
			t.Errorf("%s sized %v, optimizer recommends %v", gp.Functions[0], gp.Memory, want[gp.Functions[0]])
		}
	}
}

func TestTiesPreferSmallerMemory(t *testing.T) {
	// Flat times and a request-charge-only pricer make every size score
	// identically; the planner must resolve the tie to the smaller size,
	// mirroring the per-function optimizer's documented rule.
	pc := platform.DefaultConfig()
	pc.ColdStartBase = 0
	pc.ColdStartInit128 = 0
	pc.Pricing = platform.PricingModel{RequestCharge: 2e-7}
	g := New("tie")
	mustAdd(t, g, spec("A", 20), flatTimes(10, 128, 256, 512))
	pl, err := Optimize(context.Background(), g, Config{Platform: pc, Sizes: []platform.MemorySize{128, 256, 512}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Groups[0].Memory != 128 {
		t.Errorf("tie resolved to %v, want 128", pl.Groups[0].Memory)
	}
}

// planningGraph is a mid-size graph with two fusable chains, a fan-out,
// and the full cold-start model enabled — the determinism workload.
func planningGraph(t *testing.T) *Graph {
	g := New("det")
	sizes := []platform.MemorySize{128, 256, 512, 1024, 2048, 3008}
	mk := func(base float64) map[platform.MemorySize]float64 {
		out := make(map[platform.MemorySize]float64, len(sizes))
		for _, m := range sizes {
			speed := platform.DefaultResourceModel().SingleThreadSpeed(m)
			out[m] = base/speed + 2
		}
		return out
	}
	for i, n := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		mustAdd(t, g, spec(n, 18+2*float64(i)), mk(8+3*float64(i)))
	}
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "B", To: "C"})
	mustConnect(t, g, Edge{From: "C", To: "D", Trigger: TriggerQueue})
	mustConnect(t, g, Edge{From: "D", To: "E", Trigger: TriggerQueue})
	mustConnect(t, g, Edge{From: "A", To: "F", Calls: 2, Trigger: TriggerQueue})
	return g
}

func TestCompareNeverRegressesBaseline(t *testing.T) {
	// Compare's application-level plans are searched under the
	// no-regression rule: they may never cost more or be slower end to end
	// than the per-function baseline, on any graph (the baseline
	// assignment is always an admissible incumbent).
	cmp, err := Compare(context.Background(), planningGraph(t), Config{
		Platform: platform.DefaultConfig(),
		Sizes:    []platform.MemorySize{128, 256, 512, 1024, 2048, 3008},
		Rate:     30,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := cmp.PerFunction
	for _, pl := range []*Plan{cmp.SizesOnly, cmp.Fused} {
		if pl.CostPerReq > base.CostPerReq {
			t.Errorf("%v cost %v regresses baseline %v", pl.Groups, pl.CostPerReq, base.CostPerReq)
		}
		if pl.LatencyMs > base.LatencyMs {
			t.Errorf("%v latency %v regresses baseline %v", pl.Groups, pl.LatencyMs, base.LatencyMs)
		}
	}
}

func TestPlannerDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	var plans []*Comparison
	for _, workers := range []int{1, 2, 7} {
		cfg := Config{
			Platform: platform.DefaultConfig(),
			Sizes:    []platform.MemorySize{128, 256, 512, 1024, 2048, 3008},
			Rate:     30,
			Seed:     7,
			Workers:  workers,
		}
		cmp, err := Compare(ctx, planningGraph(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, cmp)
	}
	for i := 1; i < len(plans); i++ {
		if !reflect.DeepEqual(plans[0], plans[i]) {
			t.Errorf("plan differs between worker counts: %+v vs %+v", plans[0], plans[i])
		}
	}
}

func TestSeedChangesColdSchedulesOnly(t *testing.T) {
	// Different seeds may shift cold fractions but must still produce a
	// valid plan; the same seed must reproduce bit-identically.
	ctx := context.Background()
	mk := func(seed int64) *Plan {
		pl, err := Optimize(ctx, planningGraph(t), Config{
			Platform: platform.DefaultConfig(),
			Sizes:    []platform.MemorySize{128, 256, 512, 1024},
			Rate:     30,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	if !reflect.DeepEqual(mk(3), mk(3)) {
		t.Error("same seed produced different plans")
	}
}

func TestConfigValidation(t *testing.T) {
	g := New("cfg")
	mustAdd(t, g, spec("A", 20), flatTimes(10, 256))
	ctx := context.Background()
	if _, err := Optimize(ctx, nil, coldlessConfig(256)); err == nil {
		t.Error("nil graph accepted")
	}
	bad := coldlessConfig(256)
	bad.Tradeoff = 1.5
	if _, err := Optimize(ctx, g, bad); err == nil {
		t.Error("tradeoff 1.5 accepted")
	}
	noPrice := coldlessConfig(256)
	noPrice.Platform.Pricing = nil
	if _, err := Optimize(ctx, g, noPrice); err == nil {
		t.Error("nil pricer accepted")
	}
	// No overlap between Sizes and the node's times: planning must fail.
	if _, err := Optimize(ctx, g, coldlessConfig(512)); err == nil {
		t.Error("infeasible grid accepted")
	}
}
