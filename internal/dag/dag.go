// Package dag models a serverless application as a directed acyclic graph
// of functions and plans its deployment: per-function memory sizes chosen
// jointly with function-fusion decisions under an end-to-end latency/cost
// objective.
//
// Nodes reference a workload.Spec plus predicted (or measured) execution
// times per memory size — the same map the per-function optimizer consumes.
// Edges carry the invocation overhead between functions: trigger latency
// and per-invocation trigger cost (synchronous call, queue/topic hop, or
// stream shard poll), payload-transfer latency proportional to the event
// size, and cold-start exposure — the downstream function's probability of
// landing on a cold instance, estimated by replaying a constant-rate
// arrival schedule through the fleetsynth warm-pool model (keep-alive
// reaping, LIFO warm routing, cold starts on concurrency growth).
//
// End-to-end latency is the critical path through the DAG (longest path
// over node service times, cold-start exposure, and edge overhead);
// end-to-end cost is the sum over nodes of invocation-rate-weighted
// provider pricing plus the per-edge trigger charges. Both are scored with
// the optimizer's S_total tradeoff objective, normalized against the best
// reachable cost and latency, so application plans and per-function
// recommendations share one scale.
//
// Fusion merges a chain of same-trigger functions into one deployable unit:
// internal edges disappear (saving trigger latency, per-invocation request
// charges, and cold-start exposure), while the fused unit runs the members
// back to back in one instance whose heap holds every member's working set
// — composed through the platform ResourceModel's GC-pressure curve, which
// is what makes over-aggressive fusion expensive at small sizes. The
// planner enumerates fusion plans over the maximal fusable chains, searches
// sizes per plan (exhaustively with cost-bound pruning, falling back to
// deterministic coordinate descent past Config.MaxExhaustive), fans plans
// out over internal/pool, and reduces deterministically: results are
// bit-identical for a given seed at any worker count.
package dag

import (
	"fmt"
	"sort"

	"sizeless/internal/platform"
	"sizeless/internal/workload"
)

// Trigger classifies how an edge's downstream function is invoked. The
// trigger determines the edge's base latency and per-invocation cost, and
// whether the two functions can legally be fused into one unit.
type Trigger int

const (
	// TriggerSync is a synchronous invocation: direct SDK call, API
	// gateway hop, or a step-function state transition. Fusable.
	TriggerSync Trigger = iota
	// TriggerQueue is an asynchronous queue/topic hop (SQS, SNS,
	// EventBridge). Fusable: the fused unit simply calls the downstream
	// handler inline instead of publishing.
	TriggerQueue
	// TriggerStream is a stream-shard subscription (Kinesis, DynamoDB
	// streams). Not fusable: the consumer's batching/checkpointing
	// semantics cannot be folded into the producer.
	TriggerStream
)

// String implements fmt.Stringer.
func (t Trigger) String() string {
	switch t {
	case TriggerSync:
		return "sync"
	case TriggerQueue:
		return "queue"
	case TriggerStream:
		return "stream"
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// Fusable reports whether two functions joined by this trigger may be
// merged into one deployable unit.
func (t Trigger) Fusable() bool { return t == TriggerSync || t == TriggerQueue }

// TriggerProfile prices one trigger kind: the fixed invocation latency the
// edge adds to the critical path and the per-invocation charge it adds to
// the bill (both independent of the functions' memory sizes).
type TriggerProfile struct {
	// LatencyMs is the fixed per-hop latency in milliseconds.
	LatencyMs float64
	// CostPerInvoke is the per-invocation charge in USD.
	CostPerInvoke float64
}

// DefaultTriggerProfiles returns the built-in trigger pricing, shaped on
// public cloud list prices and measured hop latencies: synchronous hops are
// fast but priced like an API call, queue hops add delivery latency at a
// lower unit price, stream hops amortize polling into the cheapest unit
// price but the highest latency.
func DefaultTriggerProfiles() map[Trigger]TriggerProfile {
	return map[Trigger]TriggerProfile{
		TriggerSync:   {LatencyMs: 4, CostPerInvoke: 4e-7},
		TriggerQueue:  {LatencyMs: 15, CostPerInvoke: 5e-7},
		TriggerStream: {LatencyMs: 25, CostPerInvoke: 2e-7},
	}
}

// payloadTransferMsPerKB converts an edge's payload size into transfer
// latency. 0.05 ms/KB ≈ 20 MB/s effective serialization + network path for
// intra-region event delivery.
const payloadTransferMsPerKB = 0.05

// Edge is a directed invocation between two functions of the application.
type Edge struct {
	// From and To name the upstream and downstream functions.
	From, To string
	// Trigger classifies the invocation mechanism (default TriggerSync).
	Trigger Trigger
	// PayloadKB is the event payload handed downstream; it prices the
	// transfer latency. Zero means the downstream spec's PayloadKB.
	PayloadKB float64
	// Calls is how many downstream invocations one upstream invocation
	// fans out to (e.g. one ingest event producing three format calls is
	// three edges with Calls 1, or one edge with Calls 3). Zero means 1.
	// Edges with Calls != 1 are never fused.
	Calls float64
}

// Function is one node of the application graph.
type Function struct {
	// Spec is the function's workload definition; its BaseHeapMB and
	// CodeMB drive the fused-footprint model.
	Spec *workload.Spec
	// Times maps memory size → expected execution time in milliseconds
	// (predicted by the sizeless model or measured).
	Times map[platform.MemorySize]float64
}

// Graph is an application: functions plus the invocation edges between
// them. Build one with New/Add/Connect, then Validate (Plan entry points
// validate implicitly).
type Graph struct {
	// Name labels the application in plans and rendered tables.
	Name string

	nodes []Function
	names []string
	index map[string]int
	edges []Edge
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{Name: name, index: make(map[string]int)}
}

// Add registers a function node. The name comes from spec.Name and must be
// unique within the graph.
func (g *Graph) Add(spec *workload.Spec, times map[platform.MemorySize]float64) error {
	if spec == nil {
		return fmt.Errorf("dag: %s: nil spec", g.Name)
	}
	if spec.Name == "" {
		return fmt.Errorf("dag: %s: spec with empty name", g.Name)
	}
	if _, dup := g.index[spec.Name]; dup {
		return fmt.Errorf("dag: %s: duplicate function %q", g.Name, spec.Name)
	}
	if len(times) == 0 {
		return fmt.Errorf("dag: %s: function %q has no per-size times", g.Name, spec.Name)
	}
	g.index[spec.Name] = len(g.nodes)
	g.nodes = append(g.nodes, Function{Spec: spec, Times: times})
	g.names = append(g.names, spec.Name)
	return nil
}

// Connect registers an invocation edge. Both endpoints must already have
// been added; cycles are detected by Validate.
func (g *Graph) Connect(e Edge) error {
	if _, ok := g.index[e.From]; !ok {
		return fmt.Errorf("dag: %s: edge from unknown function %q", g.Name, e.From)
	}
	if _, ok := g.index[e.To]; !ok {
		return fmt.Errorf("dag: %s: edge to unknown function %q", g.Name, e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("dag: %s: self-loop on %q", g.Name, e.From)
	}
	if e.Calls < 0 {
		return fmt.Errorf("dag: %s: edge %s→%s has negative Calls", g.Name, e.From, e.To)
	}
	if e.Calls == 0 {
		e.Calls = 1
	}
	if e.PayloadKB < 0 {
		return fmt.Errorf("dag: %s: edge %s→%s has negative PayloadKB", g.Name, e.From, e.To)
	}
	if e.PayloadKB == 0 {
		e.PayloadKB = g.nodes[g.index[e.To]].Spec.PayloadKB
	}
	g.edges = append(g.edges, e)
	return nil
}

// Functions returns the function names in insertion order.
func (g *Graph) Functions() []string {
	return append([]string(nil), g.names...)
}

// Edges returns a copy of the registered edges (defaults applied).
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Validate checks structural soundness: at least one function, no duplicate
// edges, and acyclicity. Add/Connect already reject unknown nodes,
// self-loops, and duplicate names at construction time.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("dag: %s: no functions", g.Name)
	}
	seen := make(map[[2]string]bool, len(g.edges))
	for _, e := range g.edges {
		k := [2]string{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("dag: %s: duplicate edge %s→%s", g.Name, e.From, e.To)
		}
		seen[k] = true
	}
	_, err := g.topoOrder()
	return err
}

// topoOrder returns node indices in a deterministic topological order
// (Kahn's algorithm, insertion order among ready nodes), or an error naming
// a node on a cycle.
func (g *Graph) topoOrder() ([]int, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range g.edges {
		u, v := g.index[e.From], g.index[e.To]
		succ[u] = append(succ[u], v)
		indeg[v]++
	}
	order := make([]int, 0, n)
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("dag: %s: cycle through %q", g.Name, g.names[i])
			}
		}
	}
	return order, nil
}

// rates returns each node's invocations per application request: entry
// nodes run once, downstream nodes accumulate rate×Calls over incoming
// edges (fan-out multiplies, joins sum).
func (g *Graph) rates() ([]float64, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.nodes)
	indeg := make([]int, n)
	for _, e := range g.edges {
		indeg[g.index[e.To]]++
	}
	rates := make([]float64, n)
	for _, i := range order {
		if indeg[i] == 0 {
			rates[i] = 1
		}
	}
	for _, u := range order {
		for _, e := range g.edges {
			if g.index[e.From] != u {
				continue
			}
			rates[g.index[e.To]] += rates[u] * e.Calls
		}
	}
	return rates, nil
}

// fusableChains returns the maximal chains of fusable edges, each a slice
// of node indices in invocation order. An edge is fusable when its trigger
// allows it, it fans out to exactly one call, its source has no other
// outgoing edge, and its target no other incoming edge — so a chain is a
// clean linear segment of the DAG and fusing any contiguous run of it
// cannot reorder or duplicate work.
func (g *Graph) fusableChains() [][]int {
	n := len(g.nodes)
	outdeg := make([]int, n)
	indeg := make([]int, n)
	for _, e := range g.edges {
		outdeg[g.index[e.From]]++
		indeg[g.index[e.To]]++
	}
	next := make([]int, n)
	hasNext := make([]bool, n)
	hasPrev := make([]bool, n)
	for _, e := range g.edges {
		u, v := g.index[e.From], g.index[e.To]
		if !e.Trigger.Fusable() || e.Calls != 1 || outdeg[u] != 1 || indeg[v] != 1 {
			continue
		}
		next[u] = v
		hasNext[u] = true
		hasPrev[v] = true
	}
	var chains [][]int
	for i := 0; i < n; i++ {
		if hasPrev[i] || !hasNext[i] {
			continue // not the head of a maximal chain
		}
		chain := []int{i}
		for u := i; hasNext[u]; u = next[u] {
			chain = append(chain, next[u])
		}
		chains = append(chains, chain)
	}
	sort.Slice(chains, func(a, b int) bool { return chains[a][0] < chains[b][0] })
	return chains
}
