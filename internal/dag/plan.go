package dag

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"sizeless/internal/fleetsynth"
	"sizeless/internal/loadgen"
	"sizeless/internal/optimizer"
	"sizeless/internal/platform"
	"sizeless/internal/pool"
	"sizeless/internal/xrand"
)

// DefaultTradeoff is the S_total tradeoff used when Config.Tradeoff is
// zero — the paper's recommended t = 0.75 (cost-prioritizing).
const DefaultTradeoff = 0.75

// Config parameterizes application planning. The zero value of every field
// has a sensible default, so Config{Platform: platform.DefaultConfig()} is
// a working configuration.
type Config struct {
	// Platform is the target provider: pricing, resource model, cold-start
	// model, keep-alive. Pricing must be non-nil.
	Platform platform.Config
	// Sizes is the candidate memory grid. Empty means every size of the
	// platform grid (or the standard six, for a zero grid) that all
	// functions have a time for.
	Sizes []platform.MemorySize
	// Tradeoff is the S_total parameter t in (0, 1]; zero selects
	// DefaultTradeoff. (A pure-performance plan wants a small positive t.)
	Tradeoff float64
	// Rate is the application request rate in req/s driving the cold-start
	// exposure model; zero means 10.
	Rate float64
	// Seed derives the arrival schedules replayed through the warm-pool
	// model. Plans are bit-identical per seed.
	Seed int64
	// Workers bounds the fusion-plan fan-out (default GOMAXPROCS).
	Workers int
	// Triggers overrides per-trigger latency/cost profiles; nil means
	// DefaultTriggerProfiles.
	Triggers map[Trigger]TriggerProfile
	// MaxExhaustive caps the size-combination count a fusion plan may
	// search exhaustively; larger plans fall back to deterministic
	// coordinate descent. Zero means 1<<22.
	MaxExhaustive int
}

func (c Config) withDefaults() Config {
	if c.Tradeoff == 0 {
		c.Tradeoff = DefaultTradeoff
	}
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.MaxExhaustive <= 0 {
		c.MaxExhaustive = 1 << 22
	}
	return c
}

// GroupPlan is one deployable unit of a plan: a single function, or a
// fused chain of functions running back to back in one instance.
type GroupPlan struct {
	// Functions are the member names in invocation order (len > 1 means a
	// fused unit).
	Functions []string
	// Memory is the chosen size.
	Memory platform.MemorySize
	// ExecTimeMs is the unit's (composed) execution time at Memory.
	ExecTimeMs float64
	// ColdFraction is the fraction of invocations landing on a cold
	// instance under the warm-pool model at the unit's arrival rate.
	ColdFraction float64
	// LatencyMs is ExecTimeMs plus the expected cold-start penalty.
	LatencyMs float64
	// Rate is the unit's invocations per application request.
	Rate float64
	// CostPerReq is the unit's compute + request cost per application
	// request (edge/trigger charges are accounted separately).
	CostPerReq float64
}

// Plan is a complete deployment decision for an application with its
// end-to-end score.
type Plan struct {
	// App names the application, Tradeoff the t it was planned under.
	App      string
	Tradeoff float64
	// Groups are the deployable units in topological order of their heads.
	Groups []GroupPlan
	// InvocationsPerReq is the total function invocations one application
	// request triggers (fusion reduces it; sizes never change it).
	InvocationsPerReq float64
	// LatencyMs is the end-to-end critical-path latency.
	LatencyMs float64
	// NodeCostPerReq, EdgeCostPerReq, and CostPerReq decompose the bill
	// per application request: compute+request charges, trigger charges,
	// and their sum.
	NodeCostPerReq float64
	EdgeCostPerReq float64
	CostPerReq     float64
	// SCost, SPerf, STotal score the plan against the best cost and
	// latency reachable anywhere in the planner's search space, mirroring
	// the per-function optimizer's §3.5 normalization.
	SCost, SPerf, STotal float64
}

// FusedUnits counts groups with more than one member.
func (p *Plan) FusedUnits() int {
	n := 0
	for _, g := range p.Groups {
		if len(g.Functions) > 1 {
			n++
		}
	}
	return n
}

// Comparison is the three-way planning result the app-matrix experiment
// renders: the per-function baseline and the two application-level plans,
// all scored against one shared normalization. The application-level
// plans are searched under a no-regression rule — only candidates whose
// end-to-end cost AND critical-path latency are ≤ the per-function
// baseline's are admitted (the baseline's own assignment always
// qualifies, so the rule never makes a plan infeasible). Application-
// aware planning is therefore a Pareto refinement of the paper's
// optimizer: it may only improve the deployed application.
type Comparison struct {
	// PerFunction sizes every function independently with the §3.5
	// optimizer, ignoring the graph.
	PerFunction *Plan
	// SizesOnly jointly sizes all functions under the end-to-end
	// objective without fusing any, never regressing PerFunction.
	SizesOnly *Plan
	// Fused jointly chooses fusion decisions and sizes, never
	// regressing PerFunction on either axis.
	Fused *Plan
}

// limit restricts a search to candidates that regress neither axis of a
// reference plan (Compare's no-regression rule). Nil means unconstrained.
type limit struct {
	maxCost, maxLat float64
}

// segTable caches the per-size economics of one deployable unit (a
// contiguous chain segment or a singleton): composed execution time,
// cold-start exposure, latency, and cost per application request.
type segTable struct {
	members []int
	names   []string
	rate    float64 // invocations per application request
	cold    []float64
	timeMs  []float64
	latMs   []float64
	cost    []float64
	ok      []bool
	minCost float64
	minLat  float64
	nOK     int
}

// shape is one fusion plan: a partition of the graph into deployable
// units plus the contracted DAG between them. Everything except the
// per-group size choice is fixed.
type shape struct {
	groups   []*segTable
	order    []int // group indices in topological order
	preds    [][]shapePred
	edgeCost float64 // per-request trigger+transfer charges (size-independent)
	combos   float64
	// minCostSum / minLatLB are reachability lower bounds used for
	// normalization and pruning.
	minCostSum float64
	minLatLB   float64
	feasible   bool
}

type shapePred struct {
	src   int
	latMs float64
}

// planner holds the shared evaluation state for one (graph, config) pair.
type planner struct {
	g      *Graph
	cfg    Config
	sizes  []platform.MemorySize
	rates  []float64
	defs   map[Trigger]TriggerProfile
	segs   map[string]*segTable
	scheds map[string]loadgen.Schedule
	shapes []*shape // all fusion plans; index 0 is the all-singleton plan
	cmin   float64
	lmin   float64
}

func (p *planner) profile(t Trigger) TriggerProfile {
	if p.cfg.Triggers != nil {
		if tp, ok := p.cfg.Triggers[t]; ok {
			return tp
		}
	}
	return p.defs[t]
}

func newPlanner(g *Graph, cfg Config) (*planner, error) {
	if g == nil {
		return nil, fmt.Errorf("dag: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Platform.Pricing == nil {
		return nil, fmt.Errorf("dag: %s: Config.Platform.Pricing is nil", g.Name)
	}
	if cfg.Tradeoff < 0 || cfg.Tradeoff > 1 {
		return nil, fmt.Errorf("dag: %s: tradeoff %v outside [0,1]", g.Name, cfg.Tradeoff)
	}
	rates, err := g.rates()
	if err != nil {
		return nil, err
	}
	p := &planner{
		g:      g,
		cfg:    cfg,
		rates:  rates,
		defs:   DefaultTriggerProfiles(),
		segs:   make(map[string]*segTable),
		scheds: make(map[string]loadgen.Schedule),
	}
	if p.sizes, err = p.candidateSizes(); err != nil {
		return nil, err
	}
	// Build every deployable unit this graph can produce — all singletons
	// plus every contiguous segment of every fusable chain — sequentially,
	// so the cold-start schedules are sampled in a deterministic order
	// before any parallel search begins.
	for i := range g.nodes {
		if _, err := p.segment([]int{i}); err != nil {
			return nil, err
		}
	}
	chains := g.fusableChains()
	for _, chain := range chains {
		for lo := 0; lo < len(chain); lo++ {
			for hi := lo + 1; hi < len(chain); hi++ {
				if _, err := p.segment(chain[lo : hi+1]); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := p.buildShapes(chains); err != nil {
		return nil, err
	}
	return p, nil
}

// candidateSizes resolves the planning grid: cfg.Sizes, or the platform
// grid filtered to sizes every function has a positive time for.
func (p *planner) candidateSizes() ([]platform.MemorySize, error) {
	if len(p.cfg.Sizes) > 0 {
		out := append([]platform.MemorySize(nil), p.cfg.Sizes...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	grid := p.cfg.Platform.Grid.Sizes()
	if len(grid) == 0 {
		grid = platform.StandardSizes()
	}
	out := make([]platform.MemorySize, 0, len(grid))
	for _, m := range grid {
		all := true
		for i := range p.g.nodes {
			if t, ok := p.g.nodes[i].Times[m]; !ok || t <= 0 {
				all = false
				break
			}
		}
		if all {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dag: %s: no memory size is covered by every function's times", p.g.Name)
	}
	return out, nil
}

func segKey(members []int) string {
	k := ""
	for i, m := range members {
		if i > 0 {
			k += ","
		}
		k += strconv.Itoa(m)
	}
	return k
}

// schedule returns the deterministic constant-rate arrival schedule for a
// unit invoked rate× per application request, sampled once per distinct
// rate and cached.
func (p *planner) schedule(rate float64) (loadgen.Schedule, error) {
	rps := p.cfg.Rate * rate
	key := strconv.FormatFloat(rps, 'g', -1, 64)
	if s, ok := p.scheds[key]; ok {
		return s, nil
	}
	// Horizon targets ~2000 arrivals, clamped to [10s, 120s] so sparse
	// apps still see keep-alive expiry pressure and dense apps stay cheap.
	horizon := time.Duration(2000 / rps * float64(time.Second))
	if horizon < 10*time.Second {
		horizon = 10 * time.Second
	}
	if horizon > 120*time.Second {
		horizon = 120 * time.Second
	}
	rng := xrand.New(p.cfg.Seed).Derive("dag/cold/" + key)
	sched, err := loadgen.Sample(loadgen.ConstantProfile{RPS: rps}, horizon, rng)
	if err != nil {
		return nil, fmt.Errorf("dag: %s: cold-start schedule: %w", p.g.Name, err)
	}
	p.scheds[key] = sched
	return sched, nil
}

// segment builds (or returns the cached) per-size table for one unit.
func (p *planner) segment(members []int) (*segTable, error) {
	key := segKey(members)
	if s, ok := p.segs[key]; ok {
		return s, nil
	}
	fns := make([]Function, len(members))
	names := make([]string, len(members))
	for i, m := range members {
		fns[i] = p.g.nodes[m]
		names[i] = p.g.names[m]
	}
	st := &segTable{
		members: append([]int(nil), members...),
		names:   names,
		rate:    p.rates[members[0]],
		cold:    make([]float64, len(p.sizes)),
		timeMs:  make([]float64, len(p.sizes)),
		latMs:   make([]float64, len(p.sizes)),
		cost:    make([]float64, len(p.sizes)),
		ok:      make([]bool, len(p.sizes)),
		minCost: math.Inf(1),
		minLat:  math.Inf(1),
	}
	sched, err := p.schedule(st.rate)
	if err != nil {
		return nil, err
	}
	for si, m := range p.sizes {
		t, ok := composeTime(p.cfg.Platform.Resources, fns, m)
		if !ok {
			continue
		}
		dur := time.Duration(t * float64(time.Millisecond))
		cold := fleetsynth.ColdFraction(sched, dur, p.cfg.Platform.KeepAlive)
		lat := t + cold*float64(p.cfg.Platform.ColdStartDelay(m))/float64(time.Millisecond)
		st.timeMs[si] = t
		st.cold[si] = cold
		st.latMs[si] = lat
		st.cost[si] = st.rate * p.cfg.Platform.Pricing.Cost(m, dur)
		st.ok[si] = true
		st.nOK++
		st.minCost = math.Min(st.minCost, st.cost[si])
		st.minLat = math.Min(st.minLat, lat)
	}
	p.segs[key] = st
	return st, nil
}

// buildShapes enumerates every fusion plan: the cross product, over the
// maximal fusable chains, of each chain's contiguous segmentations. Shape 0
// is always the all-singleton (no fusion) plan.
func (p *planner) buildShapes(chains [][]int) error {
	inChain := make([]bool, len(p.g.nodes))
	for _, c := range chains {
		for _, n := range c {
			inChain[n] = true
		}
	}
	// cuts[i] selects one segmentation per chain via a bitmask over the
	// chain's internal boundaries; mask 0 is "no fusion".
	masks := make([]int, len(chains))
	for {
		if err := p.addShape(chains, masks, inChain); err != nil {
			return err
		}
		// Odometer increment over the per-chain masks.
		i := 0
		for ; i < len(chains); i++ {
			masks[i]++
			if masks[i] < 1<<(len(chains[i])-1) {
				break
			}
			masks[i] = 0
		}
		if i == len(chains) {
			break
		}
	}
	if len(p.shapes) == 0 || !p.shapes[0].feasible {
		return fmt.Errorf("dag: %s: no feasible size assignment (check Sizes against function times)", p.g.Name)
	}
	p.cmin, p.lmin = math.Inf(1), math.Inf(1)
	for _, sh := range p.shapes {
		if !sh.feasible {
			continue
		}
		p.cmin = math.Min(p.cmin, sh.minCostSum)
		p.lmin = math.Min(p.lmin, sh.minLatLB)
	}
	if p.cmin <= 0 || math.IsInf(p.cmin, 1) || p.lmin <= 0 || math.IsInf(p.lmin, 1) {
		return fmt.Errorf("dag: %s: degenerate normalization (cmin=%v, lmin=%v)", p.g.Name, p.cmin, p.lmin)
	}
	return nil
}

// addShape materializes the fusion plan selected by the per-chain masks:
// mask bit b set fuses chain members b and b+1 into the same group.
func (p *planner) addShape(chains [][]int, masks []int, inChain []bool) error {
	var groups []*segTable
	for ci, chain := range chains {
		mask := masks[ci]
		lo := 0
		for b := 0; b < len(chain); b++ {
			if b < len(chain)-1 && mask&(1<<b) != 0 {
				continue // boundary fused: extend the current run
			}
			st, err := p.segment(chain[lo : b+1])
			if err != nil {
				return err
			}
			groups = append(groups, st)
			lo = b + 1
		}
	}
	for i := range p.g.nodes {
		if !inChain[i] {
			st, err := p.segment([]int{i})
			if err != nil {
				return err
			}
			groups = append(groups, st)
		}
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].members[0] < groups[b].members[0] })

	sh := &shape{groups: groups, feasible: true}
	groupOf := make([]int, len(p.g.nodes))
	for gi, st := range groups {
		for _, m := range st.members {
			groupOf[m] = gi
		}
	}
	sh.preds = make([][]shapePred, len(groups))
	indeg := make([]int, len(groups))
	succ := make([][]int, len(groups))
	for _, e := range p.g.edges {
		u, v := p.g.index[e.From], p.g.index[e.To]
		gu, gv := groupOf[u], groupOf[v]
		if gu == gv {
			continue
		}
		tp := p.profile(e.Trigger)
		lat := tp.LatencyMs + e.PayloadKB*payloadTransferMsPerKB
		sh.edgeCost += p.rates[u] * e.Calls * tp.CostPerInvoke
		sh.preds[gv] = append(sh.preds[gv], shapePred{src: gu, latMs: lat})
		succ[gu] = append(succ[gu], gv)
		indeg[gv]++
	}
	// Deterministic topological order over groups (graph acyclicity was
	// already validated, and contracting clean chain segments cannot
	// introduce a cycle).
	sh.order = make([]int, 0, len(groups))
	ready := make([]int, 0, len(groups))
	for gi := range groups {
		if indeg[gi] == 0 {
			ready = append(ready, gi)
		}
	}
	for len(ready) > 0 {
		gi := ready[0]
		ready = ready[1:]
		sh.order = append(sh.order, gi)
		for _, gv := range succ[gi] {
			indeg[gv]--
			if indeg[gv] == 0 {
				ready = append(ready, gv)
			}
		}
	}
	if len(sh.order) != len(groups) {
		return fmt.Errorf("dag: %s: internal error: contracted graph not acyclic", p.g.Name)
	}

	sh.combos = 1
	sh.minCostSum = sh.edgeCost
	finish := make([]float64, len(groups))
	for gi, st := range groups {
		if st.nOK == 0 {
			sh.feasible = false
			break
		}
		sh.combos *= float64(st.nOK)
		sh.minCostSum += st.minCost
		finish[gi] = 0
	}
	if sh.feasible {
		// Latency lower bound: critical path with every group at its own
		// minimum latency (not jointly achievable in general, but a valid
		// bound for normalization and pruning).
		for _, gi := range sh.order {
			start := 0.0
			for _, pr := range sh.preds[gi] {
				start = math.Max(start, finish[pr.src]+pr.latMs)
			}
			finish[gi] = start + sh.groups[gi].minLat
		}
		sh.minLatLB = 0
		for _, f := range finish {
			sh.minLatLB = math.Max(sh.minLatLB, f)
		}
	}
	p.shapes = append(p.shapes, sh)
	return nil
}

// eval computes a candidate's total cost per request and critical-path
// latency. assign holds one size index per group; finish is scratch of
// len(groups).
func (sh *shape) eval(assign []int, finish []float64) (cost, lat float64) {
	cost = sh.edgeCost
	for gi, st := range sh.groups {
		cost += st.cost[assign[gi]]
	}
	for _, gi := range sh.order {
		start := 0.0
		for _, pr := range sh.preds[gi] {
			start = math.Max(start, finish[pr.src]+pr.latMs)
		}
		finish[gi] = start + sh.groups[gi].latMs[assign[gi]]
	}
	lat = 0
	for _, f := range finish {
		lat = math.Max(lat, f)
	}
	return cost, lat
}

func (p *planner) score(cost, lat float64) float64 {
	t := p.cfg.Tradeoff
	return t*cost/p.cmin + (1-t)*lat/p.lmin
}

// searchShape finds the shape's S_total-minimizing size assignment,
// restricted to lim when non-nil. Ties prefer the assignment encountered
// first in ascending-size enumeration order — i.e. smaller memory sizes,
// mirroring the per-function optimizer's tie rule. Returns nil if the
// shape is infeasible (or nothing in it satisfies lim).
func (p *planner) searchShape(sh *shape, lim *limit) []int {
	if !sh.feasible {
		return nil
	}
	if lim != nil && (sh.minCostSum > lim.maxCost || sh.minLatLB > lim.maxLat) {
		return nil // even the shape's lower bounds regress the reference
	}
	if sh.combos <= float64(p.cfg.MaxExhaustive) {
		return p.searchExhaustive(sh, lim)
	}
	return p.searchDescent(sh, lim)
}

func (p *planner) searchExhaustive(sh *shape, lim *limit) []int {
	n := len(sh.groups)
	// suffixMin[i] = Σ_{j ≥ i} min group cost: the cost lower bound for
	// the not-yet-assigned tail, used to prune on the cost term alone
	// (the latency term's lower bound is the shape constant minLatLB).
	suffixMin := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixMin[i] = suffixMin[i+1] + sh.groups[i].minCost
	}
	t := p.cfg.Tradeoff
	latLB := (1 - t) * sh.minLatLB / p.lmin

	assign := make([]int, n)
	best := make([]int, n)
	finish := make([]float64, n)
	bestS := math.Inf(1)
	var dfs func(gi int, partialCost float64)
	dfs = func(gi int, partialCost float64) {
		if t*(partialCost+suffixMin[gi])/p.cmin+latLB >= bestS {
			return
		}
		if lim != nil && partialCost+suffixMin[gi] > lim.maxCost {
			return // no completion of this prefix can stay under the cap
		}
		if gi == n {
			cost, lat := sh.eval(assign, finish)
			if lim != nil && (cost > lim.maxCost || lat > lim.maxLat) {
				return
			}
			if s := p.score(cost, lat); s < bestS {
				bestS = s
				copy(best, assign)
			}
			return
		}
		st := sh.groups[gi]
		for si := range p.sizes {
			if !st.ok[si] {
				continue
			}
			assign[gi] = si
			dfs(gi+1, partialCost+st.cost[si])
		}
	}
	dfs(0, sh.edgeCost)
	if math.IsInf(bestS, 1) {
		return nil
	}
	return best
}

// searchDescent is the deterministic fallback past MaxExhaustive:
// coordinate descent from each group's locally best size, sweeping groups
// in order until a full sweep improves nothing. Under a limit it first
// descends on constraint violation until a feasible point is reached
// (returning nil if it cannot), then descends on S_total accepting only
// moves that stay feasible.
func (p *planner) searchDescent(sh *shape, lim *limit) []int {
	n := len(sh.groups)
	t := p.cfg.Tradeoff
	assign := make([]int, n)
	for gi, st := range sh.groups {
		bestS := math.Inf(1)
		for si := range p.sizes {
			if !st.ok[si] {
				continue
			}
			s := t*st.cost[si]/st.minCost + (1-t)*st.latMs[si]/st.minLat
			if s < bestS {
				bestS = s
				assign[gi] = si
			}
		}
	}
	finish := make([]float64, n)
	viol := func(cost, lat float64) float64 {
		if lim == nil {
			return 0
		}
		return math.Max(0, cost/lim.maxCost-1) + math.Max(0, lat/lim.maxLat-1)
	}
	cost, lat := sh.eval(assign, finish)
	if v := viol(cost, lat); v > 0 {
		for sweep := 0; sweep < 32 && v > 0; sweep++ {
			improved := false
			for gi := 0; gi < n; gi++ {
				st := sh.groups[gi]
				cur := assign[gi]
				for si := range p.sizes {
					if !st.ok[si] || si == cur {
						continue
					}
					assign[gi] = si
					c, l := sh.eval(assign, finish)
					if nv := viol(c, l); nv < v {
						v = nv
						cur = si
						improved = true
					} else {
						assign[gi] = cur
					}
				}
				assign[gi] = cur
			}
			if !improved {
				break
			}
		}
		if v > 0 {
			return nil
		}
	}
	cost, lat = sh.eval(assign, finish)
	bestS := p.score(cost, lat)
	for sweep := 0; sweep < 32; sweep++ {
		improved := false
		for gi := 0; gi < n; gi++ {
			st := sh.groups[gi]
			cur := assign[gi]
			for si := range p.sizes {
				if !st.ok[si] || si == cur {
					continue
				}
				assign[gi] = si
				c, l := sh.eval(assign, finish)
				if s := p.score(c, l); s < bestS && viol(c, l) == 0 {
					bestS = s
					cur = si
					improved = true
				} else {
					assign[gi] = cur
				}
			}
			assign[gi] = cur
		}
		if !improved {
			break
		}
	}
	return assign
}

// plan assembles the public Plan for a searched shape.
func (p *planner) plan(sh *shape, assign []int) *Plan {
	finish := make([]float64, len(sh.groups))
	cost, lat := sh.eval(assign, finish)
	pl := &Plan{
		App:            p.g.Name,
		Tradeoff:       p.cfg.Tradeoff,
		LatencyMs:      lat,
		EdgeCostPerReq: sh.edgeCost,
		CostPerReq:     cost,
		NodeCostPerReq: cost - sh.edgeCost,
		SCost:          cost / p.cmin,
		SPerf:          lat / p.lmin,
		STotal:         p.score(cost, lat),
	}
	for _, gi := range sh.order {
		st := sh.groups[gi]
		si := assign[gi]
		pl.Groups = append(pl.Groups, GroupPlan{
			Functions:    append([]string(nil), st.names...),
			Memory:       p.sizes[si],
			ExecTimeMs:   st.timeMs[si],
			ColdFraction: st.cold[si],
			LatencyMs:    st.latMs[si],
			Rate:         st.rate,
			CostPerReq:   st.cost[si],
		})
		pl.InvocationsPerReq += st.rate
	}
	return pl
}

// searchAll searches the given shapes over the pool and returns the plan
// with the lowest S_total; earlier shapes win exact ties, so the result is
// deterministic at any worker count. A non-nil seed is an assignment for
// shapes[0] used as the incumbent (it wins ties), and lim restricts the
// search to candidates regressing neither of its axes.
func (p *planner) searchAll(ctx context.Context, shapes []*shape, lim *limit, seed []int) (*Plan, error) {
	assigns := make([][]int, len(shapes))
	err := pool.Run(ctx, len(shapes), p.cfg.Workers, func(i int) error {
		assigns[i] = p.searchShape(shapes[i], lim)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var best *Plan
	if seed != nil {
		best = p.plan(shapes[0], seed)
	}
	for i, sh := range shapes {
		if assigns[i] == nil {
			continue
		}
		pl := p.plan(sh, assigns[i])
		if best == nil || pl.STotal < best.STotal {
			best = pl
		}
	}
	if best == nil {
		return nil, fmt.Errorf("dag: %s: no feasible plan", p.g.Name)
	}
	return best, nil
}

// perFunction sizes every function independently with the per-function
// optimizer and evaluates the resulting all-singleton assignment under the
// end-to-end model. It also returns the assignment itself so Compare can
// reuse it as the incumbent of the constrained searches.
func (p *planner) perFunction() (*Plan, []int, error) {
	sh := p.shapes[0]
	assign := make([]int, len(sh.groups))
	for gi, st := range sh.groups {
		node := p.g.nodes[st.members[0]]
		times := make(map[platform.MemorySize]float64, len(p.sizes))
		for si, m := range p.sizes {
			if !st.ok[si] {
				continue
			}
			times[m] = node.Times[m]
		}
		rec, err := optimizer.Optimize(times, p.cfg.Platform.Pricing, p.cfg.Tradeoff)
		if err != nil {
			return nil, nil, fmt.Errorf("dag: %s: per-function baseline for %q: %w", p.g.Name, st.names[0], err)
		}
		for si, m := range p.sizes {
			if m == rec.Best {
				assign[gi] = si
			}
		}
	}
	return p.plan(sh, assign), assign, nil
}

// PerFunction plans the baseline: every function sized independently by
// the §3.5 optimizer (the graph contributes only the evaluation, not the
// decision). This is exactly what running `optimizer.Optimize` per
// function recommends, evaluated end to end.
func PerFunction(ctx context.Context, g *Graph, cfg Config) (*Plan, error) {
	p, err := newPlanner(g, cfg)
	if err != nil {
		return nil, err
	}
	pl, _, err := p.perFunction()
	return pl, err
}

// OptimizeSizes jointly chooses per-function sizes under the end-to-end
// latency/cost objective without fusing anything.
func OptimizeSizes(ctx context.Context, g *Graph, cfg Config) (*Plan, error) {
	p, err := newPlanner(g, cfg)
	if err != nil {
		return nil, err
	}
	return p.searchAll(ctx, p.shapes[:1], nil, nil)
}

// Optimize jointly chooses fusion decisions and per-function sizes,
// minimizing S_total over every fusion plan × size assignment. The search
// fans fusion plans out over internal/pool and is bit-identical per seed
// at any worker count.
func Optimize(ctx context.Context, g *Graph, cfg Config) (*Plan, error) {
	p, err := newPlanner(g, cfg)
	if err != nil {
		return nil, err
	}
	return p.searchAll(ctx, p.shapes, nil, nil)
}

// Compare runs all three planning modes over one shared normalization, so
// the S scores (and cost/latency) are directly comparable. The two
// application-level plans minimize S_total within the region that
// regresses neither the baseline's end-to-end cost nor its critical-path
// latency; the baseline assignment itself is the incumbent, so both are
// always feasible and win exact ties (a deploy-what-you-have answer when
// nothing strictly better exists). Since the fused search space contains
// the sizes-only space and both share the constraint and incumbent,
// STotal(Fused) ≤ STotal(SizesOnly) ≤ STotal(PerFunction) always holds.
func Compare(ctx context.Context, g *Graph, cfg Config) (*Comparison, error) {
	p, err := newPlanner(g, cfg)
	if err != nil {
		return nil, err
	}
	base, baseAssign, err := p.perFunction()
	if err != nil {
		return nil, err
	}
	lim := &limit{maxCost: base.CostPerReq, maxLat: base.LatencyMs}
	sizes, err := p.searchAll(ctx, p.shapes[:1], lim, baseAssign)
	if err != nil {
		return nil, err
	}
	fused, err := p.searchAll(ctx, p.shapes, lim, baseAssign)
	if err != nil {
		return nil, err
	}
	return &Comparison{PerFunction: base, SizesOnly: sizes, Fused: fused}, nil
}
