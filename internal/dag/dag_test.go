package dag

import (
	"strings"
	"testing"

	"sizeless/internal/platform"
	"sizeless/internal/workload"
)

// spec returns a minimal valid workload spec for graph tests.
func spec(name string, heapMB float64) *workload.Spec {
	return &workload.Spec{
		Name:       name,
		Ops:        []workload.Op{workload.CPUOp{Label: "w", WorkMs: 5, Parallelism: 1}},
		BaseHeapMB: heapMB,
		CodeMB:     2,
		PayloadKB:  2,
		ResponseKB: 1,
		NoiseCoV:   0.1,
	}
}

// flatTimes gives every listed size the same execution time.
func flatTimes(ms float64, sizes ...platform.MemorySize) map[platform.MemorySize]float64 {
	out := make(map[platform.MemorySize]float64, len(sizes))
	for _, m := range sizes {
		out[m] = ms
	}
	return out
}

func mustAdd(t *testing.T, g *Graph, s *workload.Spec, times map[platform.MemorySize]float64) {
	t.Helper()
	if err := g.Add(s, times); err != nil {
		t.Fatalf("Add(%s): %v", s.Name, err)
	}
}

func mustConnect(t *testing.T, g *Graph, e Edge) {
	t.Helper()
	if err := g.Connect(e); err != nil {
		t.Fatalf("Connect(%s→%s): %v", e.From, e.To, err)
	}
}

func TestGraphConstructionErrors(t *testing.T) {
	g := New("errs")
	if err := g.Add(nil, nil); err == nil {
		t.Fatal("Add(nil spec) succeeded")
	}
	mustAdd(t, g, spec("A", 20), flatTimes(10, 256))
	if err := g.Add(spec("A", 20), flatTimes(10, 256)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate Add: got %v, want duplicate error", err)
	}
	if err := g.Add(spec("B", 20), nil); err == nil || !strings.Contains(err.Error(), "no per-size times") {
		t.Fatalf("Add without times: got %v", err)
	}
	if err := g.Connect(Edge{From: "A", To: "missing"}); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("edge to unknown node: got %v", err)
	}
	if err := g.Connect(Edge{From: "missing", To: "A"}); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("edge from unknown node: got %v", err)
	}
	if err := g.Connect(Edge{From: "A", To: "A"}); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("self-loop: got %v", err)
	}
	mustAdd(t, g, spec("B", 20), flatTimes(10, 256))
	if err := g.Connect(Edge{From: "A", To: "B", Calls: -1}); err == nil || !strings.Contains(err.Error(), "negative Calls") {
		t.Fatalf("negative calls: got %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	g := New("cycle")
	for _, n := range []string{"A", "B", "C"} {
		mustAdd(t, g, spec(n, 20), flatTimes(10, 256))
	}
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "B", To: "C"})
	mustConnect(t, g, Edge{From: "C", To: "A"})
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate on cyclic graph: got %v, want cycle error", err)
	}
}

func TestValidateEmptyAndDuplicateEdge(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("Validate on empty graph succeeded")
	}
	g := New("dup")
	mustAdd(t, g, spec("A", 20), flatTimes(10, 256))
	mustAdd(t, g, spec("B", 20), flatTimes(10, 256))
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "A", To: "B"})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate edge") {
		t.Fatalf("duplicate edge: got %v", err)
	}
}

func TestRates(t *testing.T) {
	g := New("rates")
	for _, n := range []string{"A", "B", "C", "D"} {
		mustAdd(t, g, spec(n, 20), flatTimes(10, 256))
	}
	// A fans out to B (3 calls) and C; both feed D.
	mustConnect(t, g, Edge{From: "A", To: "B", Calls: 3})
	mustConnect(t, g, Edge{From: "A", To: "C"})
	mustConnect(t, g, Edge{From: "B", To: "D"})
	mustConnect(t, g, Edge{From: "C", To: "D"})
	rates, err := g.rates()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 1, 4}
	for i, w := range want {
		if rates[i] != w {
			t.Errorf("rate[%s] = %v, want %v", g.names[i], rates[i], w)
		}
	}
}

func TestFusableChains(t *testing.T) {
	g := New("chains")
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		mustAdd(t, g, spec(n, 20), flatTimes(10, 256))
	}
	// A→B→C is a clean sync chain; C→D rides a stream (not fusable);
	// D fans out to E and F, so neither downstream edge is fusable.
	mustConnect(t, g, Edge{From: "A", To: "B"})
	mustConnect(t, g, Edge{From: "B", To: "C"})
	mustConnect(t, g, Edge{From: "C", To: "D", Trigger: TriggerStream})
	mustConnect(t, g, Edge{From: "D", To: "E"})
	mustConnect(t, g, Edge{From: "D", To: "F"})
	chains := g.fusableChains()
	if len(chains) != 1 {
		t.Fatalf("chains = %v, want exactly one", chains)
	}
	if got := chains[0]; len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("chain = %v, want [0 1 2] (A→B→C)", got)
	}
}

func TestFuseSpecs(t *testing.T) {
	a, b := spec("A", 20), spec("B", 30)
	a.ResponseKB, b.ResponseKB = 5, 9
	a.PayloadKB, b.PayloadKB = 3, 7
	b.NoiseCoV = 0.4
	fused := FuseSpecs("", a, b)
	if fused.Name != "A+B" {
		t.Errorf("fused name = %q", fused.Name)
	}
	if fused.BaseHeapMB != 50 || fused.CodeMB != 4 {
		t.Errorf("fused footprint = heap %v code %v, want 50/4", fused.BaseHeapMB, fused.CodeMB)
	}
	if fused.PayloadKB != 3 || fused.ResponseKB != 9 {
		t.Errorf("fused payload/response = %v/%v, want head's 3 / tail's 9", fused.PayloadKB, fused.ResponseKB)
	}
	if fused.NoiseCoV != 0.4 {
		t.Errorf("fused noise = %v, want max 0.4", fused.NoiseCoV)
	}
	if len(fused.Ops) != len(a.Ops)+len(b.Ops) {
		t.Errorf("fused ops = %d, want %d", len(fused.Ops), len(a.Ops)+len(b.Ops))
	}
	if err := fused.Validate(); err != nil {
		t.Errorf("fused spec invalid: %v", err)
	}
	if FuseSpecs("x") != nil {
		t.Error("FuseSpecs with no members should be nil")
	}
}

func TestComposeTimeSingleAndInfeasible(t *testing.T) {
	res := platform.DefaultResourceModel()
	single := []Function{{Spec: spec("A", 20), Times: flatTimes(12, 256)}}
	if got, ok := composeTime(res, single, 256); !ok || got != 12 {
		t.Fatalf("singleton compose = %v/%v, want 12/true", got, ok)
	}
	if _, ok := composeTime(res, single, 512); ok {
		t.Fatal("singleton compose at unmeasured size should be infeasible")
	}
	// Two 50 MB working sets cannot share a 128 MB instance (~88 MB heap).
	pair := []Function{
		{Spec: spec("A", 50), Times: flatTimes(10, 128, 1024)},
		{Spec: spec("B", 50), Times: flatTimes(10, 128, 1024)},
	}
	if _, ok := composeTime(res, pair, 128); ok {
		t.Fatal("oversized fusion at 128MB should be infeasible")
	}
	got, ok := composeTime(res, pair, 1024)
	if !ok {
		t.Fatal("fusion at 1024MB should be feasible")
	}
	// At a roomy size the shared heap stays under the GC knee, so the
	// composed time is exactly the sum of the members'.
	if got != 20 {
		t.Fatalf("composed time at 1024MB = %v, want 20", got)
	}
}

func TestTriggerStrings(t *testing.T) {
	if TriggerSync.String() != "sync" || TriggerQueue.String() != "queue" || TriggerStream.String() != "stream" {
		t.Error("trigger String() mismatch")
	}
	if !TriggerSync.Fusable() || !TriggerQueue.Fusable() || TriggerStream.Fusable() {
		t.Error("trigger Fusable() mismatch")
	}
}
