package dag

import (
	"strings"

	"sizeless/internal/platform"
	"sizeless/internal/workload"
)

// fusedHeapHeadroom caps how much of the available heap a fused unit's
// combined working set may occupy before a size is ruled infeasible: past
// this point the GC-pressure curve is so steep that the composed time model
// stops being trustworthy (the real runtime would thrash or OOM).
const fusedHeapHeadroom = 0.90

// FuseSpecs composes member workload specs (in invocation order) into the
// spec of the fused deployable unit: segments and ops run back to back in
// one instance, the code bundle and resident heap are the sums of the
// members', the request payload is the head's and the response the tail's,
// and noise is the largest member's. The composed spec is what a
// measurement campaign would deploy to validate a fusion decision.
func FuseSpecs(name string, members ...*workload.Spec) *workload.Spec {
	if len(members) == 0 {
		return nil
	}
	fused := &workload.Spec{Name: name}
	if name == "" {
		parts := make([]string, len(members))
		for i, m := range members {
			parts[i] = m.Name
		}
		fused.Name = strings.Join(parts, "+")
	}
	for i, m := range members {
		fused.SegmentNames = append(fused.SegmentNames, m.SegmentNames...)
		fused.Ops = append(fused.Ops, m.Ops...)
		fused.BaseHeapMB += m.BaseHeapMB
		fused.CodeMB += m.CodeMB
		if m.NoiseCoV > fused.NoiseCoV {
			fused.NoiseCoV = m.NoiseCoV
		}
		if i == 0 {
			fused.PayloadKB = m.PayloadKB
		}
		if i == len(members)-1 {
			fused.ResponseKB = m.ResponseKB
		}
	}
	return fused
}

// fusedHeapMB is the resident working set of a fused unit: every member's
// base heap stays live in the shared instance.
func fusedHeapMB(members []Function) float64 {
	total := 0.0
	for _, m := range members {
		total += m.Spec.BaseHeapMB
	}
	return total
}

// composeTime models the execution time of a fused unit at size m: members
// run sequentially, each inflated by the extra GC pressure the shared heap
// adds over what the member's own (predicted/measured) time already
// includes. For a single member this is exactly its own time.
//
// The second return is false when the size is infeasible for the group —
// some member has no time at m, or the combined working set exceeds the
// heap headroom.
func composeTime(res platform.ResourceModel, members []Function, m platform.MemorySize) (float64, bool) {
	if len(members) == 1 {
		t, ok := members[0].Times[m]
		return t, ok && t > 0
	}
	heap := fusedHeapMB(members)
	if heap >= fusedHeapHeadroom*res.AvailableHeapMB(m) {
		return 0, false
	}
	shared := res.GCSlowdown(m, heap)
	total := 0.0
	for _, mem := range members {
		t, ok := mem.Times[m]
		if !ok || t <= 0 {
			return 0, false
		}
		own := res.GCSlowdown(m, mem.Spec.BaseHeapMB)
		total += t * shared / own
	}
	return total, true
}
