package workload

import (
	"strings"
	"testing"

	"sizeless/internal/services"
)

func validSpec() *Spec {
	return &Spec{
		Name:       "test-fn",
		Ops:        []Op{CPUOp{Label: "hash", WorkMs: 10, Parallelism: 1}},
		BaseHeapMB: 20,
		CodeMB:     5,
		PayloadKB:  2,
		ResponseKB: 1,
		NoiseCoV:   0.1,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"no ops", func(s *Spec) { s.Ops = nil }},
		{"nil op", func(s *Spec) { s.Ops = []Op{nil} }},
		{"negative heap", func(s *Spec) { s.BaseHeapMB = -1 }},
		{"negative noise", func(s *Spec) { s.NoiseCoV = -0.1 }},
		{"negative cpu work", func(s *Spec) { s.Ops = []Op{CPUOp{WorkMs: -5}} }},
		{"negative alloc", func(s *Spec) { s.Ops = []Op{AllocOp{MB: -1}} }},
		{"negative fread", func(s *Spec) { s.Ops = []Op{FileReadOp{MB: -1}} }},
		{"negative fwrite", func(s *Spec) { s.Ops = []Op{FileWriteOp{MB: -1}} }},
		{"negative sleep", func(s *Spec) { s.Ops = []Op{SleepOp{Ms: -1}} }},
		{"negative service calls", func(s *Spec) {
			s.Ops = []Op{ServiceOp{Service: services.DynamoDB, Calls: -1}}
		}},
		{"unknown service", func(s *Spec) {
			s.Ops = []Op{ServiceOp{Service: services.Kind(99), Calls: 1}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mutate(s)
			if err := s.Validate(); err == nil {
				t.Errorf("expected validation error for %s", tt.name)
			}
		})
	}
}

func TestSpecServicesSortedAndDeduped(t *testing.T) {
	s := validSpec()
	s.Ops = append(s.Ops,
		ServiceOp{Service: services.S3, Op: "GetObject", Calls: 1},
		ServiceOp{Service: services.DynamoDB, Op: "Query", Calls: 2},
		ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1},
	)
	kinds := s.Services()
	if len(kinds) != 2 {
		t.Fatalf("Services() = %v, want 2 kinds", kinds)
	}
	if kinds[0] != services.DynamoDB || kinds[1] != services.S3 {
		t.Errorf("Services() = %v, want sorted [dynamodb s3]", kinds)
	}
}

func TestSpecHashStability(t *testing.T) {
	a := validSpec()
	b := validSpec()
	if a.Hash() != b.Hash() {
		t.Error("identical specs must hash identically")
	}
	// The name must NOT enter the hash: the generator dedups by behaviour.
	b.Name = "other-name"
	if a.Hash() != b.Hash() {
		t.Error("name should not affect the behaviour hash")
	}
	// Any behavioural parameter change must change the hash.
	c := validSpec()
	c.Ops = []Op{CPUOp{Label: "hash", WorkMs: 11, Parallelism: 1}}
	if a.Hash() == c.Hash() {
		t.Error("changed op params should change the hash")
	}
	d := validSpec()
	d.BaseHeapMB = 21
	if a.Hash() == d.Hash() {
		t.Error("changed heap should change the hash")
	}
	// Op order matters (sequential execution).
	e := validSpec()
	e.Ops = []Op{SleepOp{Ms: 1}, CPUOp{Label: "hash", WorkMs: 10, Parallelism: 1}}
	f := validSpec()
	f.Ops = []Op{CPUOp{Label: "hash", WorkMs: 10, Parallelism: 1}, SleepOp{Ms: 1}}
	if e.Hash() == f.Hash() {
		t.Error("op order should affect the hash")
	}
}

func TestSpecHashFormat(t *testing.T) {
	h := validSpec().Hash()
	if len(h) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(h))
	}
	if strings.ToLower(h) != h {
		t.Error("hash should be lowercase hex")
	}
}

func TestTotalCPUWorkMs(t *testing.T) {
	s := validSpec()
	s.Ops = []Op{
		CPUOp{WorkMs: 10},
		CPUOp{WorkMs: 5},
		ServiceOp{Service: services.DynamoDB, Calls: 3},
		SleepOp{Ms: 100},
	}
	if got := s.TotalCPUWorkMs(); got != 15 {
		t.Errorf("TotalCPUWorkMs = %v, want 15", got)
	}
	if got := s.TotalServiceCalls(); got != 3 {
		t.Errorf("TotalServiceCalls = %v, want 3", got)
	}
}

func TestOpCanonicalDistinct(t *testing.T) {
	ops := []Op{
		CPUOp{Label: "a", WorkMs: 1, Parallelism: 1},
		AllocOp{MB: 1},
		FileReadOp{MB: 1},
		FileWriteOp{MB: 1},
		ServiceOp{Service: services.S3, Op: "Get", Calls: 1},
		SleepOp{Ms: 1},
	}
	seen := make(map[string]bool)
	for _, op := range ops {
		c := op.canonical()
		if seen[c] {
			t.Errorf("duplicate canonical form %q", c)
		}
		seen[c] = true
	}
}
