// Package workload defines the primitive operations a serverless function
// performs and the Spec type that composes them into a function. Specs are
// the common currency between the synthetic function generator (paper
// §3.1), the case-study applications (paper §4), and the runtime that
// executes them at a given memory size.
//
// An op describes *work*, not time: how much CPU, how many bytes of I/O,
// which service calls. The runtime converts work into time using the
// platform's memory-dependent resource model, which is exactly the
// mechanism Sizeless learns to invert.
package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"sizeless/internal/services"
)

// Op is a primitive operation. The set of implementations is closed; the
// runtime switches over them.
type Op interface {
	// canonical returns a stable textual encoding used for spec hashing.
	canonical() string
	// validate reports parameter errors.
	validate() error
}

// CPUOp is synchronous compute on the JavaScript thread (or the libuv
// threadpool when Parallelism > 1, as for crypto/zlib).
type CPUOp struct {
	// Label names the op for diagnostics (e.g. "invertMatrix").
	Label string
	// WorkMs is the CPU work in milliseconds at one full vCPU.
	WorkMs float64
	// Parallelism is the maximum number of threads the op can exploit
	// (1 for plain JavaScript; up to 4 for libuv threadpool work).
	Parallelism float64
	// TransientAllocMB is scratch memory allocated and released by the op;
	// it churns the heap and contributes GC pressure.
	TransientAllocMB float64
}

func (o CPUOp) canonical() string {
	return fmt.Sprintf("cpu(%s,w=%.4f,p=%.2f,a=%.3f)", o.Label, o.WorkMs, o.Parallelism, o.TransientAllocMB)
}

func (o CPUOp) validate() error {
	if o.WorkMs < 0 || o.Parallelism < 0 || o.TransientAllocMB < 0 {
		return fmt.Errorf("workload: negative parameter in %s", o.canonical())
	}
	return nil
}

// AllocOp grows the function's persistent working set (data kept live for
// the remainder of the invocation).
type AllocOp struct {
	MB float64
}

func (o AllocOp) canonical() string { return fmt.Sprintf("alloc(%.3f)", o.MB) }

func (o AllocOp) validate() error {
	if o.MB < 0 {
		return errors.New("workload: negative alloc")
	}
	return nil
}

// FileReadOp reads from the instance's /tmp file system.
type FileReadOp struct {
	MB float64
}

func (o FileReadOp) canonical() string { return fmt.Sprintf("fread(%.3f)", o.MB) }

func (o FileReadOp) validate() error {
	if o.MB < 0 {
		return errors.New("workload: negative file read")
	}
	return nil
}

// FileWriteOp writes to the instance's /tmp file system.
type FileWriteOp struct {
	MB float64
}

func (o FileWriteOp) canonical() string { return fmt.Sprintf("fwrite(%.3f)", o.MB) }

func (o FileWriteOp) validate() error {
	if o.MB < 0 {
		return errors.New("workload: negative file write")
	}
	return nil
}

// ServiceOp performs sequential calls against a managed service.
type ServiceOp struct {
	Service services.Kind
	// Op names the API operation (e.g. "Query", "PutObject") — purely
	// informational.
	Op string
	// Calls is the number of sequential round trips.
	Calls int
	// RequestKB / ResponseKB are the payload sizes per call.
	RequestKB  float64
	ResponseKB float64
}

func (o ServiceOp) canonical() string {
	return fmt.Sprintf("svc(%v.%s,n=%d,req=%.3f,resp=%.3f)", o.Service, o.Op, o.Calls, o.RequestKB, o.ResponseKB)
}

func (o ServiceOp) validate() error {
	if o.Calls < 0 || o.RequestKB < 0 || o.ResponseKB < 0 {
		return fmt.Errorf("workload: negative parameter in %s", o.canonical())
	}
	if o.Service.String() == fmt.Sprintf("service(%d)", int(o.Service)) {
		return fmt.Errorf("workload: unknown service %d", int(o.Service))
	}
	return nil
}

// SleepOp waits on the event loop without consuming CPU (timers, external
// waits that are not service calls).
type SleepOp struct {
	Ms float64
}

func (o SleepOp) canonical() string { return fmt.Sprintf("sleep(%.3f)", o.Ms) }

func (o SleepOp) validate() error {
	if o.Ms < 0 {
		return errors.New("workload: negative sleep")
	}
	return nil
}

// Spec is a complete function description.
type Spec struct {
	// Name identifies the function (unique within an experiment).
	Name string
	// SegmentNames records which generator segments compose the function
	// (informational; empty for hand-written case-study functions).
	SegmentNames []string
	// Ops is the operation sequence executed per invocation.
	Ops []Op
	// BaseHeapMB is the resident working set of code + libraries.
	BaseHeapMB float64
	// CodeMB is the deployment-package size, which drives cold-start module
	// loading and the bytecodeMetadata metric.
	CodeMB float64
	// PayloadKB / ResponseKB are the invocation event and response sizes.
	PayloadKB  float64
	ResponseKB float64
	// NoiseCoV is the per-phase multiplicative noise level (lognormal CoV).
	NoiseCoV float64
}

// Validate checks the spec for invalid parameters.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("workload: spec needs a name")
	}
	if s.BaseHeapMB < 0 || s.CodeMB < 0 || s.PayloadKB < 0 || s.ResponseKB < 0 || s.NoiseCoV < 0 {
		return fmt.Errorf("workload: negative scalar parameter in spec %q", s.Name)
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("workload: spec %q has no ops", s.Name)
	}
	for i, op := range s.Ops {
		if op == nil {
			return fmt.Errorf("workload: spec %q has nil op at %d", s.Name, i)
		}
		if err := op.validate(); err != nil {
			return fmt.Errorf("spec %q op %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// Services returns the distinct managed services the spec calls, sorted.
func (s *Spec) Services() []services.Kind {
	seen := make(map[services.Kind]bool)
	for _, op := range s.Ops {
		if svc, ok := op.(ServiceOp); ok {
			seen[svc.Service] = true
		}
	}
	kinds := make([]services.Kind, 0, len(seen))
	for k := range seen {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Hash returns a stable content hash of the spec's behaviour-relevant
// fields. The generator uses it to guarantee no function is generated twice
// (paper §3.1).
func (s *Spec) Hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heap=%.3f;code=%.3f;payload=%.3f;resp=%.3f;noise=%.4f;",
		s.BaseHeapMB, s.CodeMB, s.PayloadKB, s.ResponseKB, s.NoiseCoV)
	for _, op := range s.Ops {
		b.WriteString(op.canonical())
		b.WriteByte(';')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TotalCPUWorkMs sums the declared CPU work across ops (client-side service
// CPU excluded), useful for quick workload characterization.
func (s *Spec) TotalCPUWorkMs() float64 {
	var total float64
	for _, op := range s.Ops {
		if cpu, ok := op.(CPUOp); ok {
			total += cpu.WorkMs
		}
	}
	return total
}

// TotalServiceCalls counts the service round trips per invocation.
func (s *Spec) TotalServiceCalls() int {
	var total int
	for _, op := range s.Ops {
		if svc, ok := op.(ServiceOp); ok {
			total += svc.Calls
		}
	}
	return total
}

// Interface compliance checks.
var (
	_ Op = CPUOp{}
	_ Op = AllocOp{}
	_ Op = FileReadOp{}
	_ Op = FileWriteOp{}
	_ Op = ServiceOp{}
	_ Op = SleepOp{}
)
