package apps

import (
	"testing"
	"time"

	"sizeless/internal/platform"
	"sizeless/internal/runtime"
	"sizeless/internal/services"
	"sizeless/internal/xrand"
)

func TestPaperFunctionCounts(t *testing.T) {
	counts := map[string]int{
		"airline-booking":    8,
		"facial-recognition": 5,
		"event-processing":   7,
		"hello-retail":       7,
	}
	all := All()
	if len(all) != 4 {
		t.Fatalf("have %d apps, want 4", len(all))
	}
	for _, app := range all {
		want, ok := counts[app.Name]
		if !ok {
			t.Errorf("unexpected app %q", app.Name)
			continue
		}
		if len(app.Functions) != want {
			t.Errorf("%s has %d functions, paper has %d", app.Name, len(app.Functions), want)
		}
	}
	if got := TotalFunctions(all); got != 27 {
		t.Errorf("total functions = %d, paper evaluates 27", got)
	}
}

func TestAllSpecsValidAndExecutable(t *testing.T) {
	env := runtime.NewEnv()
	rng := xrand.New(77)
	for _, app := range All() {
		for _, spec := range app.Functions {
			spec := spec
			t.Run(app.Name+"/"+spec.Name, func(t *testing.T) {
				if err := spec.Validate(); err != nil {
					t.Fatalf("invalid spec: %v", err)
				}
				inst, err := runtime.NewInstance(env, spec, platform.Mem256, rng.Derive(app.Name+spec.Name))
				if err != nil {
					t.Fatal(err)
				}
				d, _, err := inst.Invoke()
				if err != nil {
					t.Fatal(err)
				}
				if d <= 0 || d > 30*time.Second {
					t.Errorf("implausible duration %v", d)
				}
			})
		}
	}
}

func TestFunctionNamesUniqueAcrossApps(t *testing.T) {
	seen := make(map[string]string)
	for _, app := range All() {
		for _, name := range app.FunctionNames() {
			if other, dup := seen[name]; dup {
				t.Errorf("function %q appears in both %s and %s", name, other, app.Name)
			}
			seen[name] = app.Name
		}
	}
}

func TestPerAppSpecsValidateAndNamesUnique(t *testing.T) {
	// App.Spec resolves functions by name and silently returns the first
	// match, so a duplicate name inside one app would shadow a function;
	// every spec must also pass workload validation on its own (not just
	// survive instantiation).
	for _, app := range All() {
		seen := make(map[string]bool, len(app.Functions))
		for _, spec := range app.Functions {
			if err := spec.Validate(); err != nil {
				t.Errorf("%s/%s: invalid spec: %v", app.Name, spec.Name, err)
			}
			if seen[spec.Name] {
				t.Errorf("%s: duplicate function name %q", app.Name, spec.Name)
			}
			seen[spec.Name] = true
		}
	}
}

func TestAppGraphsValidate(t *testing.T) {
	// Every app's edge metadata must reference known functions and form an
	// acyclic graph; Graph is the planner's entry point, so a bad edge
	// would only surface deep inside an experiment otherwise.
	for _, app := range All() {
		if len(app.Edges) == 0 {
			t.Errorf("%s has no DAG edges", app.Name)
			continue
		}
		times := make(map[string]map[platform.MemorySize]float64, len(app.Functions))
		for _, spec := range app.Functions {
			times[spec.Name] = map[platform.MemorySize]float64{platform.Mem256: 10}
		}
		g, err := app.Graph(times)
		if err != nil {
			t.Errorf("%s: %v", app.Name, err)
			continue
		}
		if got := len(g.Functions()); got != len(app.Functions) {
			t.Errorf("%s graph has %d functions, app has %d", app.Name, got, len(app.Functions))
		}
	}

	// Missing times for a function must be rejected.
	app := FacialRecognition()
	if _, err := app.Graph(map[string]map[platform.MemorySize]float64{}); err == nil {
		t.Error("Graph with no times succeeded")
	}
}

func TestSpecLookup(t *testing.T) {
	app := AirlineBooking()
	if _, err := app.Spec("CreateCharge"); err != nil {
		t.Errorf("known function not found: %v", err)
	}
	if _, err := app.Spec("Nope"); err == nil {
		t.Error("unknown function should error")
	}
}

func TestCaseStudyServicesBeyondTrainingSegments(t *testing.T) {
	// The paper stresses that the case studies use services the training
	// segments never touch (Rekognition, Aurora, SQS, Step Functions,
	// Kinesis). The training segments only use DynamoDB and S3.
	trainingServices := map[services.Kind]bool{
		services.DynamoDB: true,
		services.S3:       true,
	}
	novel := make(map[services.Kind]bool)
	for _, app := range All() {
		for _, spec := range app.Functions {
			for _, k := range spec.Services() {
				if !trainingServices[k] {
					novel[k] = true
				}
			}
		}
	}
	for _, want := range []services.Kind{
		services.Rekognition, services.Aurora, services.SQS,
		services.StepFunctions, services.Kinesis, services.ExternalAPI, services.SNS,
	} {
		if !novel[want] {
			t.Errorf("case studies should exercise %v (absent from training segments)", want)
		}
	}
}

func TestDriftIncreasesWithMeasurementGap(t *testing.T) {
	airline := AirlineBooking()
	retail := HelloRetail()
	if airline.Drift >= retail.Drift {
		t.Errorf("hello-retail (9 months) should drift more than airline (2 months): %v vs %v",
			retail.Drift, airline.Drift)
	}
	for _, app := range All() {
		if app.Drift < 1 {
			t.Errorf("%s drift %v < 1", app.Name, app.Drift)
		}
		if app.Rate <= 0 || app.Duration <= 0 {
			t.Errorf("%s missing workload parameters", app.Name)
		}
		if app.MeasuredAfter == "" {
			t.Errorf("%s missing measurement-gap documentation", app.Name)
		}
	}
}

func TestWorkloadMixDiversity(t *testing.T) {
	// Within each app, execution profiles must differ (the paper's Fig. 6
	// shows per-function scaling diversity). Compare CPU work spread.
	for _, app := range All() {
		min, max := 1e18, 0.0
		for _, spec := range app.Functions {
			w := spec.TotalCPUWorkMs()
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		if max < 2*min {
			t.Errorf("%s CPU work range [%v, %v] too uniform", app.Name, min, max)
		}
	}
}
