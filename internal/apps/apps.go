// Package apps defines the four case-study applications of paper §4 as
// workload specs: Airline Booking (8 functions), Facial Recognition (5),
// Event Processing (7), and Hello Retail (7) — 27 serverless functions in
// total.
//
// These are deliberately NOT compositions of the generator's segments: the
// paper's point is that a model trained on synthetic functions transfers to
// real applications, several of which use services absent from the training
// segments (Rekognition, Aurora, Kinesis, SQS, Step Functions). Each app
// also records the workload the paper drives it with and the measurement
// campaign's distance from the training dataset (modelled as platform
// drift).
package apps

import (
	"fmt"
	"time"

	"sizeless/internal/dag"
	"sizeless/internal/platform"
	"sizeless/internal/services"
	"sizeless/internal/workload"
)

// App is one case-study application.
type App struct {
	// Name identifies the application.
	Name string
	// Functions are the application's serverless functions.
	Functions []*workload.Spec
	// Edges are the invocation edges between the functions — the
	// application's DAG structure, consumed by Graph and the
	// application-level planner in internal/dag. Functions absent from
	// every edge are standalone entry points.
	Edges []dag.Edge
	// Rate and Duration describe the paper's measurement workload (§4).
	Rate     float64
	Duration time.Duration
	// Drift is the platform performance drift at measurement time relative
	// to the training dataset (the campaigns ran 2–9 months later).
	Drift float64
	// MeasuredAfter documents the gap to the training dataset.
	MeasuredAfter string
}

// Graph assembles the app's dag.Graph from per-function execution times
// (memory size → mean milliseconds, predicted or measured). Every function
// must have a times entry.
func (a App) Graph(times map[string]map[platform.MemorySize]float64) (*dag.Graph, error) {
	g := dag.New(a.Name)
	for _, f := range a.Functions {
		t, ok := times[f.Name]
		if !ok {
			return nil, fmt.Errorf("apps: %s: no times for function %q", a.Name, f.Name)
		}
		if err := g.Add(f, t); err != nil {
			return nil, err
		}
	}
	for _, e := range a.Edges {
		if err := g.Connect(e); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Spec returns the function with the given name.
func (a App) Spec(name string) (*workload.Spec, error) {
	for _, f := range a.Functions {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("apps: %s has no function %q", a.Name, name)
}

// FunctionNames lists the app's function names in declaration order.
func (a App) FunctionNames() []string {
	out := make([]string, len(a.Functions))
	for i, f := range a.Functions {
		out[i] = f.Name
	}
	return out
}

// All returns the four case-study applications in paper order.
func All() []App {
	return []App{AirlineBooking(), FacialRecognition(), EventProcessing(), HelloRetail()}
}

// TotalFunctions counts functions across the given apps.
func TotalFunctions(apps []App) int {
	var n int
	for _, a := range apps {
		n += len(a.Functions)
	}
	return n
}

// AirlineBooking is the AWS Build On Serverless flight-booking app: eight
// functions over S3, SNS, Step Functions, API Gateway, and an external
// payment provider. Measured October 2020 (two months after training).
func AirlineBooking() App {
	return App{
		Name:          "airline-booking",
		Rate:          200,
		Duration:      10 * time.Minute,
		Drift:         1.02,
		MeasuredAfter: "2 months",
		Functions: []*workload.Spec{
			{
				Name: "IngestLoyalty",
				Ops: []workload.Op{
					workload.CPUOp{Label: "parseLoyaltyEvent", WorkMs: 6, Parallelism: 1, TransientAllocMB: 4},
					workload.ServiceOp{Service: services.SNS, Op: "Receive", Calls: 1, RequestKB: 2, ResponseKB: 4},
					workload.ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1, RequestKB: 12, ResponseKB: 0.5},
				},
				BaseHeapMB: 28, CodeMB: 3.2, PayloadKB: 4, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "CaptureCharge",
				Ops: []workload.Op{
					workload.CPUOp{Label: "buildCaptureRequest", WorkMs: 9, Parallelism: 1, TransientAllocMB: 5},
					workload.ServiceOp{Service: services.ExternalAPI, Op: "POST /capture", Calls: 1, RequestKB: 3, ResponseKB: 2},
				},
				BaseHeapMB: 30, CodeMB: 4.0, PayloadKB: 3, ResponseKB: 2, NoiseCoV: 0.14,
			},
			{
				Name: "CreateCharge",
				Ops: []workload.Op{
					workload.CPUOp{Label: "tokenizeCard", WorkMs: 12, Parallelism: 1, TransientAllocMB: 6},
					workload.ServiceOp{Service: services.ExternalAPI, Op: "POST /charge", Calls: 1, RequestKB: 4, ResponseKB: 3},
				},
				BaseHeapMB: 30, CodeMB: 4.0, PayloadKB: 4, ResponseKB: 2, NoiseCoV: 0.14,
			},
			{
				Name: "CollectPayment",
				Ops: []workload.Op{
					workload.CPUOp{Label: "orchestratePayment", WorkMs: 10, Parallelism: 1, TransientAllocMB: 5},
					workload.ServiceOp{Service: services.ExternalAPI, Op: "POST /collect", Calls: 2, RequestKB: 3, ResponseKB: 2},
					workload.ServiceOp{Service: services.StepFunctions, Op: "SendTaskSuccess", Calls: 1, RequestKB: 1, ResponseKB: 0.5},
				},
				BaseHeapMB: 32, CodeMB: 4.5, PayloadKB: 4, ResponseKB: 2, NoiseCoV: 0.16,
			},
			{
				Name: "ConfirmBooking",
				Ops: []workload.Op{
					workload.CPUOp{Label: "validateBooking", WorkMs: 14, Parallelism: 1, TransientAllocMB: 8},
					workload.ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1, RequestKB: 18, ResponseKB: 0.5},
					workload.ServiceOp{Service: services.StepFunctions, Op: "SendTaskSuccess", Calls: 1, RequestKB: 1, ResponseKB: 0.5},
				},
				BaseHeapMB: 30, CodeMB: 3.8, PayloadKB: 6, ResponseKB: 2, NoiseCoV: 0.12,
			},
			{
				Name: "GetLoyalty",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.S3, Op: "GetObject", Calls: 1, RequestKB: 0.5, ResponseKB: 24},
					workload.CPUOp{Label: "aggregatePoints", WorkMs: 11, Parallelism: 1, TransientAllocMB: 10},
				},
				BaseHeapMB: 28, CodeMB: 3.2, PayloadKB: 2, ResponseKB: 6, NoiseCoV: 0.13,
			},
			{
				Name: "NotifyBooking",
				Ops: []workload.Op{
					workload.CPUOp{Label: "renderNotification", WorkMs: 7, Parallelism: 1, TransientAllocMB: 3},
					workload.ServiceOp{Service: services.SNS, Op: "Publish", Calls: 1, RequestKB: 2, ResponseKB: 0.5},
				},
				BaseHeapMB: 26, CodeMB: 3.0, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.11,
			},
			{
				Name: "ReserveBooking",
				Ops: []workload.Op{
					workload.CPUOp{Label: "allocateSeats", WorkMs: 16, Parallelism: 1, TransientAllocMB: 9},
					workload.ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1, RequestKB: 10, ResponseKB: 0.5},
				},
				BaseHeapMB: 30, CodeMB: 3.6, PayloadKB: 5, ResponseKB: 2, NoiseCoV: 0.12,
			},
		},
		// The booking state machine: ReserveBooking starts the Step
		// Functions flow, CollectPayment orchestrates the payment provider
		// (charge creation/capture as nested synchronous calls), and the
		// confirmed booking fans into the async notification → loyalty
		// pipeline over SNS. GetLoyalty is the standalone read API.
		Edges: []dag.Edge{
			{From: "ReserveBooking", To: "CollectPayment", Trigger: dag.TriggerSync},
			{From: "CollectPayment", To: "CreateCharge", Trigger: dag.TriggerSync},
			{From: "CreateCharge", To: "CaptureCharge", Trigger: dag.TriggerSync},
			{From: "CollectPayment", To: "ConfirmBooking", Trigger: dag.TriggerSync},
			{From: "ConfirmBooking", To: "NotifyBooking", Trigger: dag.TriggerQueue},
			{From: "NotifyBooking", To: "IngestLoyalty", Trigger: dag.TriggerQueue},
		},
	}
}

// FacialRecognition is the AWS Wild Rydes workshop app: five functions
// (the no-op notification function is removed, as in the paper), making
// heavy use of Rekognition — a service absent from the training segments.
// Measured December 2020 (four months after training).
func FacialRecognition() App {
	return App{
		Name:          "facial-recognition",
		Rate:          10,
		Duration:      5 * time.Minute,
		Drift:         1.04,
		MeasuredAfter: "4 months",
		Functions: []*workload.Spec{
			{
				Name: "FaceDetection",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.S3, Op: "GetObject", Calls: 1, RequestKB: 0.5, ResponseKB: 420},
					workload.ServiceOp{Service: services.Rekognition, Op: "DetectFaces", Calls: 1, RequestKB: 420, ResponseKB: 6},
					workload.CPUOp{Label: "evaluateDetection", WorkMs: 5, Parallelism: 1, TransientAllocMB: 6},
				},
				BaseHeapMB: 34, CodeMB: 5.0, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.15,
			},
			{
				Name: "FaceSearch",
				Ops: []workload.Op{
					workload.CPUOp{Label: "buildSearchRequest", WorkMs: 8, Parallelism: 1, TransientAllocMB: 5},
					workload.ServiceOp{Service: services.Rekognition, Op: "SearchFacesByImage", Calls: 1, RequestKB: 60, ResponseKB: 4},
				},
				BaseHeapMB: 32, CodeMB: 4.6, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.15,
			},
			{
				Name: "IndexFace",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.Rekognition, Op: "IndexFaces", Calls: 1, RequestKB: 60, ResponseKB: 3},
					workload.CPUOp{Label: "recordFaceId", WorkMs: 6, Parallelism: 1, TransientAllocMB: 4},
				},
				BaseHeapMB: 32, CodeMB: 4.6, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.15,
			},
			{
				Name: "PersistMetadata",
				Ops: []workload.Op{
					workload.CPUOp{Label: "shapeMetadata", WorkMs: 5, Parallelism: 1, TransientAllocMB: 3},
					workload.ServiceOp{Service: services.DynamoDB, Op: "PutItem", Calls: 1, RequestKB: 3, ResponseKB: 0.5},
				},
				BaseHeapMB: 28, CodeMB: 3.4, PayloadKB: 3, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "CreateThumbnail",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.S3, Op: "GetObject", Calls: 1, RequestKB: 0.5, ResponseKB: 420},
					workload.CPUOp{Label: "resizeImage", WorkMs: 55, Parallelism: 1, TransientAllocMB: 46},
					workload.ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1, RequestKB: 48, ResponseKB: 0.5},
				},
				BaseHeapMB: 36, CodeMB: 6.0, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.14,
			},
		},
		// The indexing state machine: detection gates the search → index →
		// persist chain and forks the thumbnail render off the same photo.
		Edges: []dag.Edge{
			{From: "FaceDetection", To: "FaceSearch", Trigger: dag.TriggerSync},
			{From: "FaceSearch", To: "IndexFace", Trigger: dag.TriggerSync},
			{From: "IndexFace", To: "PersistMetadata", Trigger: dag.TriggerSync},
			{From: "FaceDetection", To: "CreateThumbnail", Trigger: dag.TriggerSync},
		},
	}
}

// EventProcessing is the IoT event-processing system from the serverless
// migration study [51]: seven fast functions over API Gateway, SNS, SQS,
// and Aurora — none of which appear in the training segments. Measured
// December 2020 (four months after training).
func EventProcessing() App {
	return App{
		Name:          "event-processing",
		Rate:          10,
		Duration:      10 * time.Minute,
		Drift:         1.04,
		MeasuredAfter: "4 months",
		Functions: []*workload.Spec{
			{
				Name: "EventInserter",
				Ops: []workload.Op{
					workload.CPUOp{Label: "normalizeEvent", WorkMs: 2.5, Parallelism: 1, TransientAllocMB: 2},
					workload.ServiceOp{Service: services.Aurora, Op: "INSERT", Calls: 2, RequestKB: 2, ResponseKB: 0.5},
				},
				BaseHeapMB: 26, CodeMB: 2.8, PayloadKB: 2, ResponseKB: 0.5, NoiseCoV: 0.13,
			},
			{
				Name: "FormatForecast",
				Ops: []workload.Op{
					workload.CPUOp{Label: "formatForecast", WorkMs: 3.5, Parallelism: 1, TransientAllocMB: 2},
					workload.ServiceOp{Service: services.SQS, Op: "SendMessage", Calls: 1, RequestKB: 2, ResponseKB: 0.5},
				},
				BaseHeapMB: 24, CodeMB: 2.4, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "FormatState",
				Ops: []workload.Op{
					workload.CPUOp{Label: "formatState", WorkMs: 3, Parallelism: 1, TransientAllocMB: 2},
					workload.ServiceOp{Service: services.SQS, Op: "SendMessage", Calls: 1, RequestKB: 2, ResponseKB: 0.5},
				},
				BaseHeapMB: 24, CodeMB: 2.4, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "FormatTemp",
				Ops: []workload.Op{
					workload.CPUOp{Label: "formatTemperature", WorkMs: 2.8, Parallelism: 1, TransientAllocMB: 2},
					workload.ServiceOp{Service: services.SQS, Op: "SendMessage", Calls: 1, RequestKB: 2, ResponseKB: 0.5},
				},
				BaseHeapMB: 24, CodeMB: 2.4, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "GetLatestEvents",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.Aurora, Op: "SELECT latest", Calls: 1, RequestKB: 1, ResponseKB: 36},
					workload.CPUOp{Label: "serializeEvents", WorkMs: 6, Parallelism: 1, TransientAllocMB: 8},
				},
				BaseHeapMB: 26, CodeMB: 2.8, PayloadKB: 1, ResponseKB: 18, NoiseCoV: 0.16,
			},
			{
				Name: "ListAllEvents",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.Aurora, Op: "SELECT *", Calls: 1, RequestKB: 1, ResponseKB: 180},
					workload.CPUOp{Label: "serializeAll", WorkMs: 14, Parallelism: 1, TransientAllocMB: 22},
				},
				BaseHeapMB: 30, CodeMB: 2.8, PayloadKB: 1, ResponseKB: 64, NoiseCoV: 0.18,
			},
			{
				Name: "IngestEvent",
				Ops: []workload.Op{
					workload.CPUOp{Label: "validateEvent", WorkMs: 4, Parallelism: 1, TransientAllocMB: 3},
					workload.ServiceOp{Service: services.SNS, Op: "Publish", Calls: 1, RequestKB: 2, ResponseKB: 0.5},
				},
				BaseHeapMB: 26, CodeMB: 2.6, PayloadKB: 3, ResponseKB: 1, NoiseCoV: 0.12,
			},
		},
		// The ingest pipeline: IngestEvent publishes to SNS, the three
		// formatters consume it in parallel and feed EventInserter over
		// SQS (a fan-out/fan-in diamond — no fusable chain anywhere).
		// GetLatestEvents and ListAllEvents are standalone read APIs.
		Edges: []dag.Edge{
			{From: "IngestEvent", To: "FormatTemp", Trigger: dag.TriggerQueue},
			{From: "IngestEvent", To: "FormatState", Trigger: dag.TriggerQueue},
			{From: "IngestEvent", To: "FormatForecast", Trigger: dag.TriggerQueue},
			{From: "FormatTemp", To: "EventInserter", Trigger: dag.TriggerQueue},
			{From: "FormatState", To: "EventInserter", Trigger: dag.TriggerQueue},
			{From: "FormatForecast", To: "EventInserter", Trigger: dag.TriggerQueue},
		},
	}
}

// HelloRetail is Nordstrom's event-sourced product-catalog application:
// seven functions over Kinesis, API Gateway, Step Functions, DynamoDB, and
// S3. Measured May 2021 (nine months after training) — the longevity probe.
func HelloRetail() App {
	return App{
		Name:          "hello-retail",
		Rate:          10,
		Duration:      10 * time.Minute,
		Drift:         1.08,
		MeasuredAfter: "9 months",
		Functions: []*workload.Spec{
			{
				Name: "EventWriter",
				Ops: []workload.Op{
					workload.CPUOp{Label: "stampEvent", WorkMs: 7, Parallelism: 1, TransientAllocMB: 4},
					workload.ServiceOp{Service: services.Kinesis, Op: "PutRecord", Calls: 1, RequestKB: 4, ResponseKB: 0.5},
				},
				BaseHeapMB: 28, CodeMB: 3.4, PayloadKB: 4, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "PhotoAssign",
				Ops: []workload.Op{
					workload.CPUOp{Label: "choosePhotographer", WorkMs: 3, Parallelism: 1, TransientAllocMB: 2},
					workload.ServiceOp{Service: services.DynamoDB, Op: "UpdateItem", Calls: 1, RequestKB: 2, ResponseKB: 1},
					workload.ServiceOp{Service: services.SNS, Op: "Publish", Calls: 1, RequestKB: 1, ResponseKB: 0.5},
				},
				BaseHeapMB: 28, CodeMB: 3.2, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.12,
			},
			{
				Name: "PhotoProcessor",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.S3, Op: "GetObject", Calls: 1, RequestKB: 0.5, ResponseKB: 900},
					workload.CPUOp{Label: "processPhoto", WorkMs: 70, Parallelism: 1, TransientAllocMB: 60},
					workload.ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1, RequestKB: 120, ResponseKB: 0.5},
				},
				BaseHeapMB: 38, CodeMB: 6.5, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.16,
			},
			{
				Name: "PhotoReceive",
				Ops: []workload.Op{
					workload.CPUOp{Label: "validateUpload", WorkMs: 5, Parallelism: 1, TransientAllocMB: 4},
					workload.ServiceOp{Service: services.S3, Op: "PutObject", Calls: 1, RequestKB: 220, ResponseKB: 0.5},
					workload.ServiceOp{Service: services.StepFunctions, Op: "SendTaskSuccess", Calls: 1, RequestKB: 1, ResponseKB: 0.5},
				},
				BaseHeapMB: 30, CodeMB: 3.8, PayloadKB: 8, ResponseKB: 1, NoiseCoV: 0.14,
			},
			{
				Name: "PhotoReport",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.DynamoDB, Op: "Query", Calls: 1, RequestKB: 1, ResponseKB: 12},
					workload.CPUOp{Label: "renderReport", WorkMs: 9, Parallelism: 1, TransientAllocMB: 6},
				},
				BaseHeapMB: 28, CodeMB: 3.2, PayloadKB: 2, ResponseKB: 4, NoiseCoV: 0.13,
			},
			{
				Name: "ProductCatalogApi",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.DynamoDB, Op: "Query", Calls: 2, RequestKB: 1, ResponseKB: 16},
					workload.CPUOp{Label: "shapeResponse", WorkMs: 8, Parallelism: 1, TransientAllocMB: 6},
				},
				BaseHeapMB: 30, CodeMB: 3.6, PayloadKB: 2, ResponseKB: 8, NoiseCoV: 0.13,
			},
			{
				Name: "ProductCatalogBuilder",
				Ops: []workload.Op{
					workload.ServiceOp{Service: services.Kinesis, Op: "GetRecords", Calls: 1, RequestKB: 1, ResponseKB: 24},
					workload.CPUOp{Label: "buildCatalogEntries", WorkMs: 12, Parallelism: 1, TransientAllocMB: 9},
					workload.ServiceOp{Service: services.DynamoDB, Op: "BatchWriteItem", Calls: 1, RequestKB: 18, ResponseKB: 1},
				},
				BaseHeapMB: 32, CodeMB: 3.8, PayloadKB: 2, ResponseKB: 1, NoiseCoV: 0.14,
			},
		},
		// The photo-registration state machine is a pure synchronous chain
		// (assign → receive → process → report); the event-sourced catalog
		// side rides Kinesis, whose stream consumer cannot be fused into
		// its producer. ProductCatalogApi is the standalone read API.
		Edges: []dag.Edge{
			{From: "PhotoAssign", To: "PhotoReceive", Trigger: dag.TriggerSync},
			{From: "PhotoReceive", To: "PhotoProcessor", Trigger: dag.TriggerSync},
			{From: "PhotoProcessor", To: "PhotoReport", Trigger: dag.TriggerSync},
			{From: "EventWriter", To: "ProductCatalogBuilder", Trigger: dag.TriggerStream},
		},
	}
}
