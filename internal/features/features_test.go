package features

import (
	"math"
	"strings"
	"testing"

	"sizeless/internal/dataset"
	"sizeless/internal/monitoring"
	"sizeless/internal/platform"
	"sizeless/internal/stats"
)

// toyDataset builds rows whose execution time halves with each size step
// and whose metrics are simple functions of the row index.
func toyDataset(n int) *dataset.Dataset {
	ds := dataset.New(nil)
	for i := 0; i < n; i++ {
		row := dataset.Row{
			FunctionID: "fn" + string(rune('A'+i)),
			Summaries:  make(map[platform.MemorySize]monitoring.Summary),
		}
		exec := float64(1000 * (i + 1))
		for j, m := range ds.Sizes {
			var s monitoring.Summary
			s.N = 100
			s.Mean[monitoring.ExecutionTime] = exec / math.Pow(2, float64(j))
			s.Mean[monitoring.UserCPUTime] = exec / math.Pow(2, float64(j)) * 0.8
			s.Mean[monitoring.HeapUsed] = float64(20 + i)
			s.Mean[monitoring.VolCtxSwitches] = float64(10 * (i + 1))
			s.Std[monitoring.UserCPUTime] = 3
			s.CoV[monitoring.HeapUsed] = 0.05
			row.Summaries[m] = s
		}
		ds.Rows = append(ds.Rows, row)
	}
	return ds
}

func TestMeanFeaturesCoverAllMetrics(t *testing.T) {
	feats := MeanFeatures()
	if len(feats) != monitoring.NumMetrics {
		t.Fatalf("F0 has %d features, want %d", len(feats), monitoring.NumMetrics)
	}
	names := Names(feats)
	for _, n := range names {
		if !strings.HasPrefix(n, "mean_") {
			t.Errorf("unexpected name %q", n)
		}
	}
}

func TestRelativeFeature(t *testing.T) {
	var s monitoring.Summary
	s.Mean[monitoring.ExecutionTime] = 2000 // 2 s
	s.Mean[monitoring.VolCtxSwitches] = 50
	f := RelativeFeature(monitoring.VolCtxSwitches)
	if got := f.Extract(s); got != 25 {
		t.Errorf("rel ctx/s = %v, want 25", got)
	}
	// Zero execution time yields 0, not NaN.
	var zero monitoring.Summary
	if got := f.Extract(zero); got != 0 {
		t.Errorf("zero exec rel feature = %v, want 0", got)
	}
	// Execution time is excluded from relative feature generation.
	rels := RelativeFeatures([]monitoring.MetricID{monitoring.ExecutionTime, monitoring.HeapUsed})
	if len(rels) != 1 || rels[0].Name != "rel_heapUsed" {
		t.Errorf("RelativeFeatures = %v", Names(rels))
	}
}

func TestPaperFinalFeatures(t *testing.T) {
	feats := PaperFinalFeatures()
	if len(feats) != 12 {
		t.Fatalf("final feature set has %d features, want twelve (paper's eleven-analogue + TX rate)", len(feats))
	}
	// All derived from the base metrics (+ execution time).
	base := map[string]bool{"executionTime": true}
	for _, id := range PaperBaseMetrics() {
		base[id.String()] = true
	}
	if len(base) != 9 {
		t.Fatalf("base metric set has %d entries, want 9 (paper's six + fsReads + netTx + executionTime)", len(base))
	}
	for _, f := range feats {
		parts := strings.SplitN(f.Name, "_", 2)
		if len(parts) != 2 || !base[parts[1]] {
			t.Errorf("feature %q not derived from the base metrics", f.Name)
		}
	}
}

func TestMatrixAndTargets(t *testing.T) {
	ds := toyDataset(4)
	feats := []Feature{
		{Name: "mean_executionTime", Extract: func(s monitoring.Summary) float64 {
			return s.Mean[monitoring.ExecutionTime]
		}},
		{Name: "mean_heapUsed", Extract: func(s monitoring.Summary) float64 {
			return s.Mean[monitoring.HeapUsed]
		}},
	}
	x, err := Matrix(ds, platform.Mem256, feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 4 || len(x[0]) != 2 {
		t.Fatalf("matrix shape %dx%d, want 4x2", len(x), len(x[0]))
	}
	if x[0][0] != 500 { // 1000 / 2^1
		t.Errorf("x[0][0] = %v, want 500", x[0][0])
	}

	targets := TargetSizes(ds.Sizes, platform.Mem256)
	if len(targets) != 5 {
		t.Fatalf("targets = %v, want 5 sizes", targets)
	}
	for _, m := range targets {
		if m == platform.Mem256 {
			t.Error("base size must not appear in targets")
		}
	}

	y, err := Targets(ds, platform.Mem256, targets)
	if err != nil {
		t.Fatal(err)
	}
	// exec(128)/exec(256) = 2 for every row in the toy data.
	if y[0][0] != 2 {
		t.Errorf("ratio 128/256 = %v, want 2", y[0][0])
	}
	// exec(3008)/exec(256) = 2^-4.
	if got, want := y[0][4], math.Pow(2, -4); math.Abs(got-want) > 1e-12 {
		t.Errorf("ratio 3008/256 = %v, want %v", got, want)
	}
}

func TestMatrixErrors(t *testing.T) {
	ds := toyDataset(2)
	if _, err := Matrix(ds, platform.Mem256, nil); err == nil {
		t.Error("empty feature set should error")
	}
	if _, err := Matrix(ds, platform.MemorySize(192), MeanFeatures()); err == nil {
		t.Error("missing base size should error")
	}
	if _, err := Targets(ds, platform.MemorySize(192), ds.Sizes); err == nil {
		t.Error("missing base size should error")
	}
}

func TestRatiosToTimes(t *testing.T) {
	times := RatiosToTimes([]float64{2, 0.5}, 100)
	if times[0] != 200 || times[1] != 50 {
		t.Errorf("RatiosToTimes = %v", times)
	}
}

// leastSquaresEval is a fast evaluator for selection tests: linear
// least-squares MSE per target, averaged.
func leastSquaresEval(x [][]float64, y [][]float64) (float64, error) {
	design := make([][]float64, len(x))
	for i, row := range x {
		design[i] = append([]float64{1}, row...)
	}
	var total float64
	nT := len(y[0])
	for tIdx := 0; tIdx < nT; tIdx++ {
		col := make([]float64, len(y))
		for i := range y {
			col[i] = y[i][tIdx]
		}
		coef, err := stats.LeastSquares(design, col)
		if err != nil {
			// Collinear candidate set — treat as unusable.
			return math.Inf(1), nil
		}
		pred := make([]float64, len(y))
		for i, row := range design {
			var s float64
			for j, c := range coef {
				s += c * row[j]
			}
			pred[i] = s
		}
		mse, err := stats.MSE(pred, col)
		if err != nil {
			return 0, err
		}
		total += mse
	}
	return total / float64(nT), nil
}

func TestForwardSelectFindsInformativeFeature(t *testing.T) {
	// y depends only on feature 1; features 0 and 2 are noise.
	n := 40
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := 0; i < n; i++ {
		f0 := math.Sin(float64(i) * 12.9898)
		f1 := float64(i) / 10
		f2 := math.Cos(float64(i) * 78.233)
		x[i] = []float64{f0, f1, f2}
		y[i] = []float64{3*f1 + 1}
	}
	res, err := ForwardSelect(x, y, 3, 0, leastSquaresEval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order[0] != 1 {
		t.Errorf("first selected feature = %d, want 1 (the informative one)", res.Order[0])
	}
	if len(res.Curve) != 3 {
		t.Errorf("curve has %d points, want 3", len(res.Curve))
	}
	if res.Curve[0] > 1e-9 {
		t.Errorf("informative feature should fit almost perfectly, MSE = %v", res.Curve[0])
	}
	if res.BestK < 1 || res.BestK > 3 {
		t.Errorf("BestK = %d out of range", res.BestK)
	}
}

func TestForwardSelectMaxK(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {2, 3, 4}, {3, 5, 6}, {4, 6, 8}}
	y := [][]float64{{1}, {2}, {3}, {4}}
	res, err := ForwardSelect(x, y, 3, 2, leastSquaresEval)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2 {
		t.Errorf("maxK=2 selected %d features", len(res.Order))
	}
}

func TestForwardSelectErrors(t *testing.T) {
	if _, err := ForwardSelect(nil, nil, 3, 0, leastSquaresEval); err == nil {
		t.Error("empty data should error")
	}
	if _, err := ForwardSelect([][]float64{{1}}, [][]float64{{1}}, 0, 0, leastSquaresEval); err == nil {
		t.Error("zero features should error")
	}
}

func TestColumnsAndSubset(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	sub := Columns(x, []int{2, 0})
	if sub[0][0] != 3 || sub[0][1] != 1 || sub[1][0] != 6 {
		t.Errorf("Columns = %v", sub)
	}
	feats := MeanFeatures()
	picked := Subset(feats, []int{1, 3})
	if picked[0].Name != feats[1].Name || picked[1].Name != feats[3].Name {
		t.Error("Subset picked wrong features")
	}
}
