// Package features implements the feature-engineering pipeline of paper
// §3.4: the initial mean-metric feature set F0, relative (per-second)
// features, std/CoV features, the sequential forward feature selection used
// to derive F1–F4 (Fig. 4), and the construction of feature/target matrices
// from a dataset.
//
// Targets are execution-time *ratios*: each target size's execution time is
// expressed relative to the base size's execution time, which equalizes the
// scale of the five regression targets (the paper's preprocessing step).
package features

import (
	"errors"
	"fmt"

	"sizeless/internal/dataset"
	"sizeless/internal/monitoring"
	"sizeless/internal/platform"
)

// Feature is a named scalar extractor over one monitoring summary.
type Feature struct {
	// Name identifies the feature (e.g. "mean_userCPUTime",
	// "rel_netByteRx", "cov_heapUsed").
	Name string
	// Extract computes the feature value.
	Extract func(s monitoring.Summary) float64
}

// MeanFeatures returns the paper's F0: the mean of every Table-1 metric
// (execution time included).
func MeanFeatures() []Feature {
	out := make([]Feature, 0, monitoring.NumMetrics)
	for _, id := range monitoring.AllMetrics() {
		id := id
		out = append(out, Feature{
			Name:    "mean_" + id.String(),
			Extract: func(s monitoring.Summary) float64 { return s.Mean[id] },
		})
	}
	return out
}

// RelativeFeature builds the per-second version of a metric: the mean value
// normalized by the mean execution length (the paper's F2 construction,
// e.g. "context switches per second").
func RelativeFeature(id monitoring.MetricID) Feature {
	return Feature{
		Name: "rel_" + id.String(),
		Extract: func(s monitoring.Summary) float64 {
			execMs := s.Mean[monitoring.ExecutionTime]
			if execMs <= 0 {
				return 0
			}
			return s.Mean[id] / (execMs / 1000)
		},
	}
}

// RelativeFeatures returns per-second versions of the given metrics,
// skipping execution time itself (its relative form is identically 1000).
func RelativeFeatures(ids []monitoring.MetricID) []Feature {
	out := make([]Feature, 0, len(ids))
	for _, id := range ids {
		if id == monitoring.ExecutionTime {
			continue
		}
		out = append(out, RelativeFeature(id))
	}
	return out
}

// StdFeature returns the standard deviation of a metric as a feature.
func StdFeature(id monitoring.MetricID) Feature {
	return Feature{
		Name:    "std_" + id.String(),
		Extract: func(s monitoring.Summary) float64 { return s.Std[id] },
	}
}

// CoVFeature returns the coefficient of variation of a metric as a feature.
func CoVFeature(id monitoring.MetricID) Feature {
	return Feature{
		Name:    "cov_" + id.String(),
		Extract: func(s monitoring.Summary) float64 { return s.CoV[id] },
	}
}

// PaperBaseMetrics returns the base metrics the final feature set F4 is
// computed from. The paper's §3.4 selection found six: heap used, user CPU
// time, system CPU time, voluntary context switches, bytes written to the
// file system, and bytes received over the network. On this simulator's
// training population the selection additionally keeps the file-system READ
// counter and the bytes TRANSMITTED counter: file reads and uploads are
// first-class memory-scalable resources here (image/file/S3-upload
// segments), and without their rates a read- or upload-bound function is
// indistinguishable from a wait-bound one — same low CPU/write/receive
// rates, opposite scaling with memory.
func PaperBaseMetrics() []monitoring.MetricID {
	return []monitoring.MetricID{
		monitoring.HeapUsed,
		monitoring.UserCPUTime,
		monitoring.SystemCPUTime,
		monitoring.VolCtxSwitches,
		monitoring.FSReads,
		monitoring.FSWrites,
		monitoring.BytesReceived,
		monitoring.BytesTransmitted,
	}
}

// PaperFinalFeatures returns our analogue of the paper's final feature set
// F4 (eleven features on their data; twelve here, see PaperBaseMetrics):
// every feature is derived from the base metrics plus the monitored
// execution time, which anchors the input scale. Matching the paper's
// Fig. 5, the load-bearing features are *rates* (per-second
// normalizations), which decorrelates them from raw execution length; the
// remaining slots carry the std/CoV shape information added in the third
// selection round.
func PaperFinalFeatures() []Feature {
	mean := func(id monitoring.MetricID) Feature {
		return Feature{
			Name:    "mean_" + id.String(),
			Extract: func(s monitoring.Summary) float64 { return s.Mean[id] },
		}
	}
	return []Feature{
		mean(monitoring.ExecutionTime),
		mean(monitoring.HeapUsed),
		RelativeFeature(monitoring.UserCPUTime),
		RelativeFeature(monitoring.SystemCPUTime),
		RelativeFeature(monitoring.VolCtxSwitches),
		RelativeFeature(monitoring.FSReads),
		RelativeFeature(monitoring.FSWrites),
		RelativeFeature(monitoring.BytesReceived),
		RelativeFeature(monitoring.BytesTransmitted),
		StdFeature(monitoring.UserCPUTime),
		CoVFeature(monitoring.UserCPUTime),
		CoVFeature(monitoring.HeapUsed),
	}
}

// ByName reconstructs a feature from its canonical name ("mean_x",
// "rel_x", "std_x", "cov_x" where x is a Table-1 metric name). This is how
// persisted models resolve their feature sets on load.
func ByName(name string) (Feature, error) {
	for _, prefix := range []string{"mean_", "rel_", "std_", "cov_"} {
		if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		id, err := monitoring.MetricByName(name[len(prefix):])
		if err != nil {
			return Feature{}, fmt.Errorf("features: %w", err)
		}
		switch prefix {
		case "mean_":
			return Feature{
				Name:    name,
				Extract: func(s monitoring.Summary) float64 { return s.Mean[id] },
			}, nil
		case "rel_":
			return RelativeFeature(id), nil
		case "std_":
			return StdFeature(id), nil
		default:
			return CoVFeature(id), nil
		}
	}
	return Feature{}, fmt.Errorf("features: unknown feature name %q", name)
}

// Names lists the feature names in order.
func Names(feats []Feature) []string {
	out := make([]string, len(feats))
	for i, f := range feats {
		out[i] = f.Name
	}
	return out
}

// ErrMissingBase is returned when a row lacks the base-size summary.
var ErrMissingBase = errors.New("features: row missing base memory size")

// Matrix extracts the feature matrix of ds at the base memory size. The
// rows share one flat backing array (a single allocation, cache-friendly);
// callers own the result. Batch hot paths that extract repeatedly should
// use an Extractor instead, which recycles this storage through a
// sync.Pool.
func Matrix(ds *dataset.Dataset, base platform.MemorySize, feats []Feature) ([][]float64, error) {
	if len(feats) == 0 {
		return nil, errors.New("features: empty feature set")
	}
	flat := make([]float64, len(ds.Rows)*len(feats))
	x := make([][]float64, len(ds.Rows))
	for i, row := range ds.Rows {
		s, ok := row.Summaries[base]
		if !ok {
			return nil, fmt.Errorf("%w: row %q, base %v", ErrMissingBase, row.FunctionID, base)
		}
		vec := flat[i*len(feats) : (i+1)*len(feats) : (i+1)*len(feats)]
		ExtractInto(vec, feats, s)
		x[i] = vec
	}
	return x, nil
}

// TargetSizes returns the grid minus the base size — the five prediction
// targets of the multi-target regression.
func TargetSizes(sizes []platform.MemorySize, base platform.MemorySize) []platform.MemorySize {
	out := make([]platform.MemorySize, 0, len(sizes)-1)
	for _, m := range sizes {
		if m != base {
			out = append(out, m)
		}
	}
	return out
}

// Targets extracts the ratio-target matrix: for each row, the execution
// time at each target size divided by the execution time at the base size.
func Targets(ds *dataset.Dataset, base platform.MemorySize, targets []platform.MemorySize) ([][]float64, error) {
	y := make([][]float64, len(ds.Rows))
	for i, row := range ds.Rows {
		baseMs, ok := row.ExecTimeMs(base)
		if !ok {
			return nil, fmt.Errorf("%w: row %q, base %v", ErrMissingBase, row.FunctionID, base)
		}
		if baseMs <= 0 {
			return nil, fmt.Errorf("features: row %q has non-positive base execution time", row.FunctionID)
		}
		vec := make([]float64, len(targets))
		for j, m := range targets {
			ms, ok := row.ExecTimeMs(m)
			if !ok {
				return nil, fmt.Errorf("features: row %q missing target %v", row.FunctionID, m)
			}
			vec[j] = ms / baseMs
		}
		y[i] = vec
	}
	return y, nil
}

// RatiosToTimes converts predicted ratios back to absolute execution times
// given the monitored base execution time in ms.
func RatiosToTimes(ratios []float64, baseMs float64) []float64 {
	out := make([]float64, len(ratios))
	for i, r := range ratios {
		out[i] = r * baseMs
	}
	return out
}
