package features

import (
	"errors"
	"math"
)

// Evaluator scores a candidate feature subset: it receives the feature
// matrix restricted to the candidate columns plus the target matrix and
// returns a cross-validated error (lower is better). The modeling layer
// supplies an evaluator that trains the paper's neural network.
type Evaluator func(x [][]float64, y [][]float64) (float64, error)

// SelectionResult reports one sequential-forward-selection run.
type SelectionResult struct {
	// Order lists feature indices in the order they were selected.
	Order []int
	// Curve[k] is the best error achieved with k+1 features — the series
	// plotted in paper Fig. 4.
	Curve []float64
	// BestK is the number of features minimizing the curve.
	BestK int
}

// ForwardSelect runs sequential forward feature selection (paper §3.4,
// "inspired by [27]"): starting from the empty set, it greedily adds the
// feature that minimizes the evaluator's error, up to maxK features (0 =
// all), and reports the error curve.
func ForwardSelect(x [][]float64, y [][]float64, nFeatures, maxK int, eval Evaluator) (SelectionResult, error) {
	if len(x) == 0 || len(x) != len(y) {
		return SelectionResult{}, errors.New("features: empty or mismatched selection data")
	}
	if nFeatures <= 0 {
		return SelectionResult{}, errors.New("features: no candidate features")
	}
	if maxK <= 0 || maxK > nFeatures {
		maxK = nFeatures
	}

	selected := make([]int, 0, maxK)
	inSet := make([]bool, nFeatures)
	curve := make([]float64, 0, maxK)

	for len(selected) < maxK {
		bestIdx := -1
		bestErr := math.Inf(1)
		for f := 0; f < nFeatures; f++ {
			if inSet[f] {
				continue
			}
			cand := append(append([]int(nil), selected...), f)
			sub := columns(x, cand)
			e, err := eval(sub, y)
			if err != nil {
				return SelectionResult{}, err
			}
			if e < bestErr {
				bestErr = e
				bestIdx = f
			}
		}
		if bestIdx < 0 {
			break
		}
		selected = append(selected, bestIdx)
		inSet[bestIdx] = true
		curve = append(curve, bestErr)
	}

	bestK := 1
	bestErr := curve[0]
	for k, e := range curve {
		if e < bestErr {
			bestErr = e
			bestK = k + 1
		}
	}
	return SelectionResult{Order: selected, Curve: curve, BestK: bestK}, nil
}

// columns projects x onto the given column indices.
func columns(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		sub := make([]float64, len(idx))
		for j, c := range idx {
			sub[j] = row[c]
		}
		out[i] = sub
	}
	return out
}

// Columns is the exported projection used by callers that need to apply a
// selection result to fresh data.
func Columns(x [][]float64, idx []int) [][]float64 { return columns(x, idx) }

// Subset returns the features at the given indices.
func Subset(feats []Feature, idx []int) []Feature {
	out := make([]Feature, len(idx))
	for i, j := range idx {
		out[i] = feats[j]
	}
	return out
}
