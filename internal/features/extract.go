package features

import (
	"errors"
	"sync"

	"sizeless/internal/monitoring"
)

// ExtractInto computes the feature vector of one summary into dst, which
// must be exactly len(feats) long. It is the allocation-free core shared by
// Matrix, the Extractor's pooled batch path, and single-summary prediction.
func ExtractInto(dst []float64, feats []Feature, s monitoring.Summary) {
	for j, f := range feats {
		dst[j] = f.Extract(s)
	}
}

// Extractor is the pooled feature-extraction path of the batch pipeline:
// it hands out feature matrices backed by reusable storage so the hot
// ingest→predict→recommend loop of a fleet-scale recommender stops
// allocating a fresh matrix per call. Borrowed matrices come from a
// sync.Pool, so an Extractor is safe for concurrent use; each caller gets
// its own backing buffer.
type Extractor struct {
	feats []Feature
	pool  sync.Pool // stores *matrixBuf
}

// matrixBuf is one reusable matrix: a flat float64 arena plus the row
// headers sliced into it.
type matrixBuf struct {
	flat []float64
	rows [][]float64
}

// NewExtractor builds a pooled extractor over a fixed feature set.
func NewExtractor(feats []Feature) (*Extractor, error) {
	if len(feats) == 0 {
		return nil, errors.New("features: empty feature set")
	}
	return &Extractor{feats: feats}, nil
}

// Width returns the number of features per row.
func (e *Extractor) Width() int { return len(e.feats) }

// Borrow returns an n×Width matrix backed by pooled storage and a release
// function that returns the storage to the pool. Contents are unspecified;
// neither the matrix nor its rows may be used after release.
func (e *Extractor) Borrow(n int) ([][]float64, func()) {
	buf, _ := e.pool.Get().(*matrixBuf)
	if buf == nil {
		buf = &matrixBuf{}
	}
	width := len(e.feats)
	if need := n * width; cap(buf.flat) < need {
		buf.flat = make([]float64, need)
	} else {
		buf.flat = buf.flat[:need]
	}
	if cap(buf.rows) < n {
		buf.rows = make([][]float64, n)
	} else {
		buf.rows = buf.rows[:n]
	}
	for i := range buf.rows {
		buf.rows[i] = buf.flat[i*width : (i+1)*width : (i+1)*width]
	}
	return buf.rows, func() { e.pool.Put(buf) }
}
