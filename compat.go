package sizeless

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sizeless/internal/recommender"
	"sizeless/internal/workload"
)

// This file keeps the pre-options API alive as thin shims over the
// context + functional-options entry points. New code should use
// GenerateDataset, TrainPredictor, MonitorFunction, and
// Predictor.NewService directly.

// DatasetConfig configures the offline dataset-generation phase.
//
// Deprecated: use GenerateDataset with WithFunctions, WithRate,
// WithDuration, WithSizes, WithSeed, and WithWorkers.
type DatasetConfig struct {
	Functions int
	Rate      float64
	Duration  time.Duration
	Sizes     []MemorySize
	Seed      int64
	Workers   int
}

// options converts the legacy struct into the equivalent option slice.
func (c DatasetConfig) options() []Option {
	var opts []Option
	if c.Functions > 0 {
		opts = append(opts, WithFunctions(c.Functions))
	}
	if c.Rate > 0 {
		opts = append(opts, WithRate(c.Rate))
	}
	if c.Duration > 0 {
		opts = append(opts, WithDuration(c.Duration))
	}
	if c.Sizes != nil {
		opts = append(opts, WithSizes(c.Sizes...))
	}
	if c.Seed != 0 {
		opts = append(opts, WithSeed(c.Seed))
	}
	if c.Workers > 0 {
		opts = append(opts, WithWorkers(c.Workers))
	}
	return opts
}

// GenerateDatasetFromConfig runs the offline measurement campaign from a
// legacy config struct.
//
// Deprecated: use GenerateDataset(ctx, opts...).
func GenerateDatasetFromConfig(cfg DatasetConfig) (*Dataset, error) {
	if cfg.Functions <= 0 {
		return nil, errors.New("sizeless: DatasetConfig.Functions must be positive")
	}
	//lint:ignore ctxflow deprecated pre-context shim; its documented contract is uncancellable, callers wanting cancellation use GenerateDataset(ctx, ...)
	return GenerateDataset(context.Background(), cfg.options()...)
}

// PredictorConfig configures model training.
//
// Deprecated: use TrainPredictor with WithBase, WithHidden, WithEpochs,
// and WithSeed.
type PredictorConfig struct {
	Base   MemorySize
	Hidden []int
	Epochs int
	Seed   int64
}

func (c PredictorConfig) options() []Option {
	var opts []Option
	if c.Base != 0 {
		opts = append(opts, WithBase(c.Base))
	}
	if c.Hidden != nil {
		opts = append(opts, WithHidden(c.Hidden...))
	}
	if c.Epochs > 0 {
		opts = append(opts, WithEpochs(c.Epochs))
	}
	if c.Seed != 0 {
		opts = append(opts, WithSeed(c.Seed))
	}
	return opts
}

// TrainPredictorFromConfig fits the model from a legacy config struct.
//
// Deprecated: use TrainPredictor(ctx, ds, opts...).
func TrainPredictorFromConfig(ds *Dataset, cfg PredictorConfig) (*Predictor, error) {
	//lint:ignore ctxflow deprecated pre-context shim; its documented contract is uncancellable, callers wanting cancellation use TrainPredictor(ctx, ...)
	return TrainPredictor(context.Background(), ds, cfg.options()...)
}

// MonitorConfig configures online monitoring of a (simulated) production
// function.
//
// Deprecated: use MonitorFunction with WithMemory, WithRate, WithDuration,
// and WithSeed.
type MonitorConfig struct {
	Memory   MemorySize
	Rate     float64
	Duration time.Duration
	Seed     int64
}

func (c MonitorConfig) options() []Option {
	var opts []Option
	if c.Memory != 0 {
		opts = append(opts, WithMemory(c.Memory))
	}
	if c.Rate > 0 {
		opts = append(opts, WithRate(c.Rate))
	}
	if c.Duration > 0 {
		opts = append(opts, WithDuration(c.Duration))
	}
	if c.Seed != 0 {
		opts = append(opts, WithSeed(c.Seed))
	}
	return opts
}

// MonitorFunctionFromConfig monitors a workload from a legacy config
// struct.
//
// Deprecated: use MonitorFunction(ctx, spec, opts...).
func MonitorFunctionFromConfig(spec *workload.Spec, cfg MonitorConfig) (Summary, error) {
	//lint:ignore ctxflow deprecated pre-context shim; its documented contract is uncancellable, callers wanting cancellation use MonitorFunction(ctx, ...)
	return MonitorFunction(context.Background(), spec, cfg.options()...)
}

// ServiceConfig configures the continuous recommendation service.
//
// Deprecated: use Predictor.NewService with WithTradeoff, WithMinWindow,
// and WithDrift.
type ServiceConfig = recommender.Config

// NewServiceFromConfig wraps the predictor in a recommendation service
// from a legacy config struct.
//
// Deprecated: use Predictor.NewService(opts...).
func (p *Predictor) NewServiceFromConfig(cfg ServiceConfig) (*Service, error) {
	if cfg.Pricing == nil {
		cfg.Pricing = p.pricing()
	}
	svc, err := recommender.New(p.model, cfg)
	if err != nil {
		return nil, fmt.Errorf("sizeless: %w", err)
	}
	return svc, nil
}
