package sizeless_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"sizeless"
	"sizeless/internal/fleetsynth"
	"sizeless/internal/services"
	"sizeless/internal/workload"
)

// demoSpec is a mixed CPU/service function used across the API tests.
func demoSpec() *workload.Spec {
	return &workload.Spec{
		Name: "demo-fn",
		Ops: []workload.Op{
			workload.CPUOp{Label: "work", WorkMs: 40, Parallelism: 1, TransientAllocMB: 10},
			workload.ServiceOp{Service: services.DynamoDB, Op: "Query", Calls: 2, RequestKB: 1, ResponseKB: 16},
		},
		BaseHeapMB: 30,
		CodeMB:     3,
		PayloadKB:  2,
		ResponseKB: 1,
		NoiseCoV:   0.1,
	}
}

// The shared AWS dataset/predictor are built once: several tests only read
// them, and dataset generation dominates the package's test time.
var (
	quickOnce sync.Once
	quickDS   *sizeless.Dataset
	quickPred *sizeless.Predictor
	quickErr  error
)

func quickDataset(t *testing.T) *sizeless.Dataset {
	t.Helper()
	quickOnce.Do(func() {
		quickDS, quickErr = sizeless.GenerateDataset(context.Background(),
			sizeless.WithFunctions(60),
			sizeless.WithRate(10),
			sizeless.WithDuration(5*time.Second),
			sizeless.WithSeed(42),
		)
		if quickErr != nil {
			return
		}
		quickPred, quickErr = sizeless.TrainPredictor(context.Background(), quickDS,
			sizeless.WithHidden(32, 32),
			sizeless.WithEpochs(150),
		)
	})
	if quickErr != nil {
		t.Fatal(quickErr)
	}
	return quickDS
}

func quickPredictor(t *testing.T) *sizeless.Predictor {
	t.Helper()
	quickDataset(t)
	return quickPred
}

func TestEndToEndPipeline(t *testing.T) {
	ctx := context.Background()
	ds := quickDataset(t)
	if len(ds.Rows) != 60 {
		t.Fatalf("dataset rows = %d, want 60", len(ds.Rows))
	}

	pred := quickPredictor(t)
	if pred.Base() != sizeless.Mem256 {
		t.Errorf("default base = %v, want 256MB", pred.Base())
	}
	if pred.Provider().Name() != "aws-lambda" {
		t.Errorf("default provider = %q, want aws-lambda", pred.Provider().Name())
	}

	summary, err := sizeless.MonitorFunction(ctx, demoSpec(),
		sizeless.WithMemory(sizeless.Mem256),
		sizeless.WithRate(10),
		sizeless.WithDuration(10*time.Second),
		sizeless.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	if summary.N == 0 {
		t.Fatal("monitoring produced no samples")
	}

	times, err := pred.Predict(summary)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 6 {
		t.Fatalf("predictions for %d sizes, want 6", len(times))
	}
	// Monotone non-increasing (enforced physical constraint).
	prev := times[sizeless.Mem128]
	for _, m := range sizeless.StandardSizes()[1:] {
		if times[m] > prev+1e-9 {
			t.Errorf("prediction increased with memory at %v", m)
		}
		prev = times[m]
	}

	rec, err := pred.Recommend(summary, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Best.Valid() {
		t.Errorf("recommended size %v invalid", rec.Best)
	}
	if len(rec.Options) != 6 {
		t.Errorf("recommendation scored %d options, want 6", len(rec.Options))
	}
}

func TestPredictBatchMatchesLoop(t *testing.T) {
	ctx := context.Background()
	ds := quickDataset(t)
	pred := quickPredictor(t)

	sums := make([]sizeless.Summary, 0, len(ds.Rows))
	for _, row := range ds.Rows {
		sums = append(sums, row.Summaries[sizeless.Mem256])
	}

	batch, err := pred.PredictBatch(ctx, sums)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sums) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(sums))
	}
	// The batch path uses a reassociated (but deterministic) summation for
	// speed, so allow a few ULPs of drift against the scalar path.
	const relTol = 1e-9
	for i, s := range sums {
		single, err := pred.Predict(s)
		if err != nil {
			t.Fatal(err)
		}
		for m, v := range single {
			if diff := math.Abs(batch[i][m] - v); diff > relTol*math.Abs(v) {
				t.Fatalf("batch[%d] differs from Predict at %v: %v vs %v", i, m, batch[i][m], v)
			}
		}
	}

	recs, err := pred.RecommendBatch(ctx, sums, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		rec, err := pred.Recommend(s, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		if recs[i].Best != rec.Best {
			t.Fatalf("batch recommendation %d selected %v, loop selected %v", i, recs[i].Best, rec.Best)
		}
	}
}

func TestPredictBatchEmptyAndCancelled(t *testing.T) {
	pred := quickPredictor(t)
	out, err := pred.PredictBatch(context.Background(), nil)
	if err != nil || out != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", out, err)
	}

	ds := quickDataset(t)
	sums := make([]sizeless.Summary, 0, len(ds.Rows))
	for _, row := range ds.Rows {
		sums = append(sums, row.Summaries[sizeless.Mem256])
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pred.PredictBatch(cancelled, sums); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch error = %v, want context.Canceled", err)
	}
}

func TestGenerateDatasetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sizeless.GenerateDataset(ctx,
		sizeless.WithFunctions(10),
		sizeless.WithDuration(2*time.Second),
	)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled campaign error = %v, want context.Canceled", err)
	}
}

func TestGenerateDatasetProgress(t *testing.T) {
	var mu sync.Mutex
	var calls int
	var lastDone, lastTotal int
	_, err := sizeless.GenerateDataset(context.Background(),
		sizeless.WithFunctions(3),
		sizeless.WithRate(10),
		sizeless.WithDuration(2*time.Second),
		sizeless.WithSeed(5),
		sizeless.WithProgress(func(done, total int) {
			mu.Lock()
			calls++
			lastDone, lastTotal = done, total
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 18 || lastDone != 18 || lastTotal != 18 {
		t.Errorf("progress calls=%d last=%d/%d, want 18 calls ending 18/18", calls, lastDone, lastTotal)
	}
}

func TestProviderPipelineGCP(t *testing.T) {
	ctx := context.Background()
	gcp := sizeless.GCPCloudFunctions()
	ds, err := sizeless.GenerateDataset(ctx,
		sizeless.WithProvider(gcp),
		sizeless.WithFunctions(40),
		sizeless.WithRate(10),
		sizeless.WithDuration(4*time.Second),
		sizeless.WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := gcp.DefaultSizes()
	if len(ds.Sizes) != len(wantSizes) {
		t.Fatalf("GCP dataset has %d sizes, want %d", len(ds.Sizes), len(wantSizes))
	}
	for i, m := range wantSizes {
		if ds.Sizes[i] != m {
			t.Fatalf("GCP dataset size[%d] = %v, want %v", i, ds.Sizes[i], m)
		}
	}

	pred, err := sizeless.TrainPredictor(ctx, ds,
		sizeless.WithProvider(gcp),
		sizeless.WithHidden(24, 24),
		sizeless.WithEpochs(80),
	)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Provider().Name() != "gcp-cloudfunctions" {
		t.Errorf("provider = %q, want gcp-cloudfunctions", pred.Provider().Name())
	}

	summary, err := sizeless.MonitorFunction(ctx, demoSpec(),
		sizeless.WithProvider(gcp),
		sizeless.WithRate(10),
		sizeless.WithDuration(8*time.Second),
		sizeless.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pred.Recommend(summary, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !gcp.Grid().Valid(rec.Best) {
		t.Errorf("GCP recommendation %v not on the GCP grid", rec.Best)
	}
	if len(rec.Options) != len(wantSizes) {
		t.Errorf("GCP recommendation scored %d options, want %d", len(rec.Options), len(wantSizes))
	}
}

func TestMonitorFunctionAzureGridDefault(t *testing.T) {
	// Azure has no 3008MB; monitoring at an off-grid size must fail, and
	// the default memory must land on the Azure grid.
	azure := sizeless.AzureFunctions()
	_, err := sizeless.MonitorFunction(context.Background(), demoSpec(),
		sizeless.WithProvider(azure),
		sizeless.WithMemory(sizeless.Mem3008),
		sizeless.WithDuration(2*time.Second),
	)
	if err == nil {
		t.Error("monitoring at 3008MB on Azure should error (grid caps at 1536MB)")
	}

	sum, err := sizeless.MonitorFunction(context.Background(), demoSpec(),
		sizeless.WithProvider(azure),
		sizeless.WithRate(10),
		sizeless.WithDuration(4*time.Second),
		sizeless.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N == 0 {
		t.Error("Azure monitoring produced no samples")
	}
}

func TestProviderRegistryPublicAPI(t *testing.T) {
	names := sizeless.Providers()
	want := map[string]bool{"aws-lambda": false, "gcp-cloudfunctions": false, "azure-functions": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in provider %q not listed", n)
		}
	}
	if _, err := sizeless.ProviderByName("AWS-Lambda"); err != nil {
		t.Errorf("lookup should be case-insensitive: %v", err)
	}
	if _, err := sizeless.ProviderByName("definitely-not-a-cloud"); err == nil {
		t.Error("unknown provider lookup should error")
	}
	if err := sizeless.RegisterProvider(sizeless.AWSLambda()); err == nil {
		t.Error("duplicate registration should error")
	}
}

func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := sizeless.GenerateDataset(ctx); err == nil {
		t.Error("GenerateDataset without WithFunctions should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(-1)); err == nil {
		t.Error("negative function count should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithProvider(nil)); err == nil {
		t.Error("nil provider should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithTradeoff(2)); err == nil {
		t.Error("out-of-range tradeoff should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithShards(0)); err == nil {
		t.Error("non-positive shard count should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithShards(-4)); err == nil {
		t.Error("negative shard count should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithEarlyStopping(0)); err == nil {
		t.Error("non-positive patience should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithValidationSplit(1)); err == nil {
		t.Error("validation split of 1 should error")
	}
	if _, err := sizeless.GenerateDataset(ctx, sizeless.WithFunctions(1), sizeless.WithValidationSplit(-0.2)); err == nil {
		t.Error("negative validation split should error")
	}
}

// TestServiceShardedFleetIngest drives the public fleet path: a sharded
// service, one concurrent IngestBatch over many functions, and concurrent
// readers — the WithShards/WithWorkers knobs end to end.
func TestServiceShardedFleetIngest(t *testing.T) {
	pred := quickPredictor(t)
	svc, err := pred.NewService(
		sizeless.WithMinWindow(50),
		sizeless.WithShards(4),
		sizeless.WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	batch := fleetsynth.Batch(40, 60, 91, 1)
	statuses, err := svc.IngestBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != len(batch) {
		t.Fatalf("got %d statuses, want %d", len(statuses), len(batch))
	}
	for id, st := range statuses {
		if !st.HasRecommendation {
			t.Errorf("%s: no recommendation after a full window", id)
		}
		if st.Observed != 60 {
			t.Errorf("%s: observed %d, want 60", id, st.Observed)
		}
	}
	sum := svc.Summarize()
	if sum.Functions != len(batch) || sum.WithRecommend != len(batch) {
		t.Errorf("summary %+v, want %d tracked and recommended", sum, len(batch))
	}
	if got := len(svc.Fleet()); got != len(batch) {
		t.Errorf("fleet lists %d functions, want %d", got, len(batch))
	}
}

func TestDeprecatedConfigShims(t *testing.T) {
	ds, err := sizeless.GenerateDatasetFromConfig(sizeless.DatasetConfig{
		Functions: 8,
		Rate:      10,
		Duration:  3 * time.Second,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Rows) != 8 {
		t.Fatalf("shim dataset rows = %d, want 8", len(ds.Rows))
	}
	if _, err := sizeless.GenerateDatasetFromConfig(sizeless.DatasetConfig{}); err == nil {
		t.Error("zero functions should error through the shim")
	}

	pred, err := sizeless.TrainPredictorFromConfig(ds, sizeless.PredictorConfig{Hidden: []int{16}, Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sizeless.MonitorFunctionFromConfig(demoSpec(), sizeless.MonitorConfig{
		Rate: 10, Duration: 3 * time.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Recommend(sum, 0.75); err != nil {
		t.Fatal(err)
	}
	if _, err := pred.NewServiceFromConfig(sizeless.ServiceConfig{MinWindow: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	ds := quickDataset(t)
	pred, err := sizeless.TrainPredictor(context.Background(), ds,
		sizeless.WithHidden(24), sizeless.WithEpochs(60))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sizeless.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	summary, err := sizeless.MonitorFunction(context.Background(), demoSpec(),
		sizeless.WithRate(10), sizeless.WithDuration(5*time.Second), sizeless.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := pred.Predict(summary)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Predict(summary)
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range a {
		if b[m] != v {
			t.Fatalf("loaded predictor differs at %v: %v vs %v", m, v, b[m])
		}
	}
}

func TestDatasetCSVRoundTripViaFacade(t *testing.T) {
	ds := quickDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sizeless.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(ds.Rows) {
		t.Fatalf("round trip lost rows: %d vs %d", len(back.Rows), len(ds.Rows))
	}
	// A predictor trained on the round-tripped dataset behaves identically.
	ctx := context.Background()
	p1, err := sizeless.TrainPredictor(ctx, ds, sizeless.WithHidden(16), sizeless.WithEpochs(30))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sizeless.TrainPredictor(ctx, back, sizeless.WithHidden(16), sizeless.WithEpochs(30))
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Rows[0].Summaries[sizeless.Mem256]
	a, err := p1.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	for m := range a {
		if a[m] != b[m] {
			t.Fatalf("CSV round trip changed training outcome at %v", m)
		}
	}
}

func TestRecommendTradeoffValidation(t *testing.T) {
	ds := quickDataset(t)
	pred := quickPredictor(t)
	summary := ds.Rows[0].Summaries[sizeless.Mem256]
	if _, err := pred.Recommend(summary, 1.5); err == nil {
		t.Error("tradeoff > 1 should error")
	}
	if _, err := pred.Recommend(summary, -0.2); err == nil {
		t.Error("tradeoff < 0 should error")
	}
}

func TestCommonSizes(t *testing.T) {
	aws, gcp, azure := sizeless.AWSLambda(), sizeless.GCPCloudFunctions(), sizeless.AzureFunctions()
	got := sizeless.CommonSizes(aws, gcp, azure)
	want := []sizeless.MemorySize{128, 256, 512, 1024}
	if len(got) != len(want) {
		t.Fatalf("CommonSizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommonSizes = %v, want %v", got, want)
		}
	}
	// A single provider's common grid is its own default grid.
	solo := sizeless.CommonSizes(aws)
	if len(solo) != 6 {
		t.Errorf("CommonSizes(aws) = %v, want the six paper sizes", solo)
	}
	if sizeless.CommonSizes() != nil {
		t.Error("CommonSizes() should be nil")
	}
}

func TestAdaptCrossProvider(t *testing.T) {
	ctx := context.Background()
	aws, gcp := sizeless.AWSLambda(), sizeless.GCPCloudFunctions()
	portable := sizeless.CommonSizes(aws, gcp)

	awsDS, err := sizeless.GenerateDataset(ctx,
		sizeless.WithProvider(aws),
		sizeless.WithSizes(portable...),
		sizeless.WithFunctions(40),
		sizeless.WithRate(10),
		sizeless.WithDuration(4*time.Second),
		sizeless.WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := sizeless.TrainPredictor(ctx, awsDS,
		sizeless.WithProvider(aws),
		sizeless.WithHidden(32, 32),
		sizeless.WithEpochs(150),
	)
	if err != nil {
		t.Fatal(err)
	}

	gcpDS, err := sizeless.GenerateDataset(ctx,
		sizeless.WithProvider(gcp),
		sizeless.WithSizes(pred.Sizes()...),
		sizeless.WithFunctions(15),
		sizeless.WithRate(10),
		sizeless.WithDuration(4*time.Second),
		sizeless.WithSeed(12),
	)
	if err != nil {
		t.Fatal(err)
	}

	adapted, err := pred.Adapt(ctx, gcpDS,
		sizeless.WithProvider(gcp),
		sizeless.WithFreezeLayers(1),
		sizeless.WithFineTuneEpochs(60),
	)
	if err != nil {
		t.Fatal(err)
	}

	// The adapted predictor is bound to the target; the source is untouched.
	if adapted.Provider().Name() != "gcp-cloudfunctions" {
		t.Errorf("adapted provider = %q", adapted.Provider().Name())
	}
	if pred.Provider().Name() != "aws-lambda" {
		t.Errorf("source provider changed: %q", pred.Provider().Name())
	}
	if adapted.Base() != pred.Base() {
		t.Errorf("base changed: %v vs %v", adapted.Base(), pred.Base())
	}

	prov := adapted.Provenance()
	if !prov.FineTuned || prov.Source != "aws-lambda" || prov.Target != "gcp-cloudfunctions" {
		t.Errorf("provenance = %+v", prov)
	}
	if prov.FreezeLayers != 1 || prov.Epochs != 60 || prov.AdaptRows != 15 {
		t.Errorf("provenance settings = %+v", prov)
	}
	if pred.Provenance() != (sizeless.Provenance{}) {
		t.Errorf("source predictor gained provenance: %+v", pred.Provenance())
	}

	// Provenance survives Save/Load, and the loaded model still predicts.
	var buf bytes.Buffer
	if err := adapted.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := sizeless.LoadPredictor(&buf, sizeless.WithProvider(gcp))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Provenance() != prov {
		t.Errorf("provenance lost: %+v vs %+v", loaded.Provenance(), prov)
	}
	sum := gcpDS.Rows[0].Summaries[loaded.Base()]
	if _, err := loaded.Recommend(sum, 0.75); err != nil {
		t.Errorf("adapted model cannot recommend: %v", err)
	}

	// Evaluate works on datasets covering the predictor's grid.
	if _, err := adapted.Evaluate(gcpDS); err != nil {
		t.Errorf("evaluate: %v", err)
	}

	// Adapting with every layer frozen is rejected.
	if _, err := pred.Adapt(ctx, gcpDS, sizeless.WithFreezeLayers(99)); err == nil {
		t.Error("freezing more layers than the network has should error")
	}
	// Cancelled context aborts adaptation.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := pred.Adapt(cancelled, gcpDS, sizeless.WithFineTuneEpochs(500)); err == nil {
		t.Error("cancelled context should abort Adapt")
	}
}

func TestAdaptOptionValidation(t *testing.T) {
	pred := quickPredictor(t)
	ds := quickDataset(t)
	if _, err := pred.Adapt(context.Background(), ds, sizeless.WithFreezeLayers(-1)); err == nil {
		t.Error("negative freeze should error")
	}
	if _, err := pred.Adapt(context.Background(), ds, sizeless.WithFineTuneEpochs(0)); err == nil {
		t.Error("zero fine-tune epochs should error")
	}
}

// TestAdaptEarlyStoppingCurbsDiagonalOverfit is the regression test for
// the tiny-corpus overfit: adapting a predictor to a small dataset from
// the *same* provider (a diagonal pair of the transfer matrix) with the
// full fixed 100-epoch budget degrades held-out accuracy relative to the
// stale model — there is no platform change to learn, so every epoch past
// convergence just memorizes the tiny corpus. With WithEarlyStopping the
// stale-vs-adapted gap must shrink, and the recorded provenance must show
// the budget was actually cut.
func TestAdaptEarlyStoppingCurbsDiagonalOverfit(t *testing.T) {
	ctx := context.Background()
	pred := quickPredictor(t)
	holdout := quickDataset(t)

	// A tiny same-provider adaptation corpus, disjoint from the training
	// and holdout data by seed.
	tiny, err := sizeless.GenerateDataset(ctx,
		sizeless.WithFunctions(10),
		sizeless.WithRate(10),
		sizeless.WithDuration(4*time.Second),
		sizeless.WithSeed(77),
	)
	if err != nil {
		t.Fatal(err)
	}

	stale, err := pred.Evaluate(holdout)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := pred.Adapt(ctx, tiny, sizeless.WithFineTuneEpochs(100))
	if err != nil {
		t.Fatal(err)
	}
	stopped, err := pred.Adapt(ctx, tiny,
		sizeless.WithFineTuneEpochs(100),
		sizeless.WithEarlyStopping(10),
	)
	if err != nil {
		t.Fatal(err)
	}

	fixedEval, err := fixed.Evaluate(holdout)
	if err != nil {
		t.Fatal(err)
	}
	stoppedEval, err := stopped.Evaluate(holdout)
	if err != nil {
		t.Fatal(err)
	}

	// The overfit gap (adapted minus stale on held-out MAPE; positive =
	// adaptation hurt) must shrink with early stopping on.
	fixedGap := fixedEval.MAPE - stale.MAPE
	stoppedGap := stoppedEval.MAPE - stale.MAPE
	if stoppedGap >= fixedGap {
		t.Errorf("early stopping did not shrink the diagonal overfit gap: fixed %+.4f vs stopped %+.4f (stale MAPE %.4f)",
			fixedGap, stoppedGap, stale.MAPE)
	}

	// Provenance records the cut: fewer epochs than the budget, flagged as
	// early-stopped; the fixed-budget run spent it all.
	if prov := stopped.Provenance(); !prov.EarlyStopped || prov.EpochsSpent >= 100 || prov.EpochsSpent == 0 {
		t.Errorf("early-stopped provenance = %+v, want EarlyStopped with 0 < EpochsSpent < 100", prov)
	}
	if prov := fixed.Provenance(); prov.EarlyStopped || prov.EpochsSpent != 100 {
		t.Errorf("fixed-budget provenance = %+v, want EpochsSpent == 100", prov)
	}

	// WithValidationSplit alone (no patience) must still activate the
	// split: the full budget runs, but best-validation weights are
	// restored, so the result differs from the fixed-budget adapt.
	valOnly, err := pred.Adapt(ctx, tiny,
		sizeless.WithFineTuneEpochs(100),
		sizeless.WithValidationSplit(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	if prov := valOnly.Provenance(); prov.EarlyStopped || prov.EpochsSpent != 100 {
		t.Errorf("val-split-only provenance = %+v, want full budget without early stop", prov)
	}
	s := holdout.Rows[0].Summaries[pred.Base()]
	fixedPred, err := fixed.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	valPred, err := valOnly.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for m, v := range fixedPred {
		if valPred[m] != v {
			same = false
		}
	}
	if same {
		t.Error("WithValidationSplit alone was a no-op: predictions identical to the fixed-budget adapt")
	}
}
