package sizeless_test

import (
	"bytes"
	"testing"
	"time"

	"sizeless"
	"sizeless/internal/services"
	"sizeless/internal/workload"
)

// demoSpec is a mixed CPU/service function used across the API tests.
func demoSpec() *workload.Spec {
	return &workload.Spec{
		Name: "demo-fn",
		Ops: []workload.Op{
			workload.CPUOp{Label: "work", WorkMs: 40, Parallelism: 1, TransientAllocMB: 10},
			workload.ServiceOp{Service: services.DynamoDB, Op: "Query", Calls: 2, RequestKB: 1, ResponseKB: 16},
		},
		BaseHeapMB: 30,
		CodeMB:     3,
		PayloadKB:  2,
		ResponseKB: 1,
		NoiseCoV:   0.1,
	}
}

func quickDataset(t *testing.T) *sizeless.Dataset {
	t.Helper()
	ds, err := sizeless.GenerateDataset(sizeless.DatasetConfig{
		Functions: 60,
		Rate:      10,
		Duration:  5 * time.Second,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEndToEndPipeline(t *testing.T) {
	ds := quickDataset(t)
	if len(ds.Rows) != 60 {
		t.Fatalf("dataset rows = %d, want 60", len(ds.Rows))
	}

	pred, err := sizeless.TrainPredictor(ds, sizeless.PredictorConfig{
		Hidden: []int{32, 32},
		Epochs: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Base() != sizeless.Mem256 {
		t.Errorf("default base = %v, want 256MB", pred.Base())
	}

	summary, err := sizeless.MonitorFunction(demoSpec(), sizeless.MonitorConfig{
		Memory:   sizeless.Mem256,
		Rate:     10,
		Duration: 10 * time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.N == 0 {
		t.Fatal("monitoring produced no samples")
	}

	times, err := pred.Predict(summary)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 6 {
		t.Fatalf("predictions for %d sizes, want 6", len(times))
	}
	// Monotone non-increasing (enforced physical constraint).
	prev := times[sizeless.Mem128]
	for _, m := range sizeless.StandardSizes()[1:] {
		if times[m] > prev+1e-9 {
			t.Errorf("prediction increased with memory at %v", m)
		}
		prev = times[m]
	}

	rec, err := pred.Recommend(summary, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Best.Valid() {
		t.Errorf("recommended size %v invalid", rec.Best)
	}
	if len(rec.Options) != 6 {
		t.Errorf("recommendation scored %d options, want 6", len(rec.Options))
	}
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	ds := quickDataset(t)
	pred, err := sizeless.TrainPredictor(ds, sizeless.PredictorConfig{
		Hidden: []int{24},
		Epochs: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sizeless.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	summary, err := sizeless.MonitorFunction(demoSpec(), sizeless.MonitorConfig{
		Rate: 10, Duration: 5 * time.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pred.Predict(summary)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Predict(summary)
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range a {
		if b[m] != v {
			t.Fatalf("loaded predictor differs at %v: %v vs %v", m, v, b[m])
		}
	}
}

func TestDatasetCSVRoundTripViaFacade(t *testing.T) {
	ds := quickDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sizeless.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(ds.Rows) {
		t.Fatalf("round trip lost rows: %d vs %d", len(back.Rows), len(ds.Rows))
	}
	// A predictor trained on the round-tripped dataset behaves identically.
	p1, err := sizeless.TrainPredictor(ds, sizeless.PredictorConfig{Hidden: []int{16}, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sizeless.TrainPredictor(back, sizeless.PredictorConfig{Hidden: []int{16}, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Rows[0].Summaries[sizeless.Mem256]
	a, err := p1.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	for m := range a {
		if a[m] != b[m] {
			t.Fatalf("CSV round trip changed training outcome at %v", m)
		}
	}
}

func TestGenerateDatasetErrors(t *testing.T) {
	if _, err := sizeless.GenerateDataset(sizeless.DatasetConfig{}); err == nil {
		t.Error("zero functions should error")
	}
}

func TestRecommendTradeoffValidation(t *testing.T) {
	ds := quickDataset(t)
	pred, err := sizeless.TrainPredictor(ds, sizeless.PredictorConfig{Hidden: []int{16}, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	summary := ds.Rows[0].Summaries[sizeless.Mem256]
	if _, err := pred.Recommend(summary, 1.5); err == nil {
		t.Error("tradeoff > 1 should error")
	}
	if _, err := pred.Recommend(summary, -0.2); err == nil {
		t.Error("tradeoff < 0 should error")
	}
}
