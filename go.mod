module sizeless

go 1.24
